"""RAN-GD's privacy/accuracy trade-off: the paper's Figure 3 story.

Sweeps the randomization knob alpha/(gamma x) from 0 (deterministic
DET-GD) to 1 and shows, side by side:

* the posterior-probability *range* the miner can determine -- the
  privacy win (the determinable worst-case breach falls from 50%
  towards 0); and
* the support error of RAN-GD mining at itemset length 4 -- the
  accuracy cost (barely moves).

Run:  python examples/privacy_accuracy_tradeoff.py [n_records]
"""

import sys

from repro import generate_census
from repro.core import RandomizedGammaDiagonal
from repro.experiments import ExperimentConfig, figure3_support_error


def main() -> None:
    n_records = int(sys.argv[1]) if len(sys.argv) > 1 else 25_000
    gamma, prior = 19.0, 0.05
    n = generate_census(10).schema.joint_size  # |S_U| = 2000 for CENSUS

    alphas = [0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0]

    print(f"gamma = {gamma:g}, prior P(Q) = {prior:.0%}, |S_U| = {n}\n")
    print("privacy: worst-case posterior the miner can determine")
    print(f"{'alpha/(gamma x)':>16} {'rho2(-a)':>9} {'rho2(0)':>9} {'rho2(+a)':>9}")
    for rel in alphas:
        randomized = RandomizedGammaDiagonal.from_relative_alpha(n, gamma, rel)
        lo, mid, hi = randomized.posterior_range(prior)
        print(f"{rel:>16.1f} {lo:>9.1%} {mid:>9.1%} {hi:>9.1%}")
    print(
        "\n(at alpha = gamma*x/2 the determinable breach drops to ~33% versus\n"
        " DET-GD's 50% -- the paper's Section 4.1 example.)\n"
    )

    print("accuracy: RAN-GD support error at itemset length 4 on CENSUS")
    config = ExperimentConfig(seed=7, n_records=n_records)
    series = figure3_support_error("CENSUS", length=4, alphas=alphas, config=config)
    print(f"{'alpha/(gamma x)':>16} {'RAN-GD rho':>11} {'DET-GD rho':>11}")
    for rel in alphas:
        print(
            f"{rel:>16.1f} {series['RAN-GD'][rel]:>10.1f}% {series['DET-GD'][rel]:>10.1f}%"
        )
    print(
        "\nreading: the error stays in the same band across the whole sweep --\n"
        "substantial privacy gain at marginal accuracy cost (paper Section 4.2)."
    )


if __name__ == "__main__":
    main()
