"""Mechanism shoot-out on CENSUS: the paper's Figure 1 in miniature.

Runs DET-GD, RAN-GD, MASK and Cut-and-Paste on the same CENSUS-like
database under the same gamma=19 privacy guarantee and prints the three
error panels (support error, false negatives, false positives) per
itemset length.

Run:  python examples/mechanism_comparison.py [n_records]
"""

import sys

from repro import generate_census
from repro.experiments import ExperimentConfig, run_comparison
from repro.experiments.reporting import render_series_table


def main() -> None:
    n_records = int(sys.argv[1]) if len(sys.argv) > 1 else 25_000
    data = generate_census(n_records)
    config = ExperimentConfig(seed=99)
    print(f"running {', '.join(config.mechanisms)} on {data} (gamma={config.gamma:g})\n")

    runs = run_comparison(data, config)

    print("support error rho (%) -- paper Fig. 1(a); log-scale in the paper:")
    print(render_series_table({name: run.errors.rho for name, run in runs.items()}))

    print("\nfalse negatives sigma- (%) -- paper Fig. 1(b):")
    print(
        render_series_table(
            {name: run.errors.sigma_minus for name, run in runs.items()}
        )
    )

    print("\nfalse positives sigma+ (%) -- paper Fig. 1(c):")
    print(
        render_series_table(
            {name: run.errors.sigma_plus for name, run in runs.items()}
        )
    )

    print(
        "\nreading: MASK and C&P stop finding itemsets beyond length 3-4 "
        "(sigma- hits 100%), while the gamma-diagonal mechanisms keep "
        "discovering the long patterns -- the paper's headline result."
    )


if __name__ == "__main__":
    main()
