"""Additive-noise perturbation on continuous data (Agrawal-Srikant 2000).

The historical starting point of privacy-preserving mining and the
FRAPP paper's reference [3]: clients add random noise to a continuous
value (here: age), and the miner reconstructs the age *distribution*
with the iterative Bayesian (EM) procedure.  The reconstructed
histogram is then discretized with the same equi-width bins the FRAPP
CENSUS schema uses -- connecting the continuous and categorical worlds
of the repo.

Run:  python examples/continuous_reconstruction.py
"""

import numpy as np

from repro.baselines.additive_noise import AdditiveNoisePerturbation
from repro.data.discretize import equiwidth_edges, interval_labels


def main() -> None:
    rng = np.random.default_rng(42)

    # A plausible adult age distribution (mixture of working-age cohorts).
    n = 40_000
    ages = np.concatenate(
        [
            rng.normal(28, 6, size=int(n * 0.45)),
            rng.normal(45, 8, size=int(n * 0.38)),
            rng.normal(64, 7, size=int(n * 0.17)),
        ]
    )
    ages = np.clip(ages, 15, 95)

    # Clients add uniform noise of +/- 20 years before disclosure.
    operator = AdditiveNoisePerturbation(scale=20.0, kind="uniform")
    disclosed = operator.perturb(ages, seed=rng)
    print(
        f"perturbation: uniform +/- {operator.scale:.0f} years "
        f"(95% interval privacy = {operator.interval_privacy(0.95):.0f} years)"
    )

    # Miner-side reconstruction on a fine grid, then the paper's bins.
    fine_edges = np.linspace(15, 95, 41)
    estimate = operator.reconstruct_distribution(disclosed, fine_edges)

    paper_edges = equiwidth_edges(15, 95, 4)
    labels = interval_labels(paper_edges)
    fine_mid = 0.5 * (fine_edges[:-1] + fine_edges[1:])
    truth_hist, _ = np.histogram(ages, bins=paper_edges)
    truth = truth_hist / truth_hist.sum()
    raw_hist, _ = np.histogram(np.clip(disclosed, 15, 95 - 1e-9), bins=paper_edges)
    raw = raw_hist / raw_hist.sum()

    print(f"\n{'age bin':>10} {'true':>7} {'raw noisy':>10} {'reconstructed':>14}")
    for b, label in enumerate(labels):
        mask = (fine_mid >= paper_edges[b]) & (fine_mid < paper_edges[b + 1])
        rebuilt = estimate[mask].sum()
        print(f"{label:>10} {truth[b]:>7.1%} {raw[b]:>10.1%} {rebuilt:>14.1%}")

    recon_binned = np.array(
        [
            estimate[(fine_mid >= paper_edges[b]) & (fine_mid < paper_edges[b + 1])].sum()
            for b in range(4)
        ]
    )
    print(
        f"\nL1 distance to truth: raw noisy histogram "
        f"{np.abs(raw - truth).sum():.3f} vs reconstructed "
        f"{np.abs(recon_binned - truth).sum():.3f}"
    )


if __name__ == "__main__":
    main()
