"""Bring your own schema: a private two-question survey.

Shows the lower-level FRAPP API on user-defined data, without the
mining layer:

* define a schema, collect (synthetic) answers;
* perturb at the "client side" with the gamma-diagonal matrix;
* reconstruct the full joint distribution at the "server side";
* cross-check the single-attribute case against Warner's classic
  randomized-response estimator, which FRAPP contains as its n=2
  special case.

Run:  python examples/custom_survey.py
"""

import numpy as np

from repro import (
    Attribute,
    CategoricalDataset,
    GammaDiagonalPerturbation,
    Schema,
    WarnerRandomizedResponse,
    reconstruct_counts,
)
from repro.core import GammaDiagonalMatrix


def main() -> None:
    rng = np.random.default_rng(2005)

    # A small sensitive survey: smoking status x income bracket.
    schema = Schema(
        [
            Attribute("smokes", ["never", "former", "current"]),
            Attribute("income", ["low", "middle", "high"]),
        ]
    )
    # Ground truth the server should never see record-by-record.
    n = 40_000
    smokes = rng.choice(3, size=n, p=[0.55, 0.25, 0.20])
    income = np.where(
        smokes == 2,
        rng.choice(3, size=n, p=[0.45, 0.40, 0.15]),   # smokers skew lower
        rng.choice(3, size=n, p=[0.30, 0.45, 0.25]),
    )
    data = CategoricalDataset(schema, np.stack([smokes, income], axis=1))

    # Client side: gamma = 9 ~ (rho1, rho2) = (10%, 50%).
    gamma = 9.0
    perturbation = GammaDiagonalPerturbation(schema, gamma)
    perturbed = perturbation.perturb(data, seed=rng)

    # Server side: reconstruct the joint distribution from Y = A X.
    estimate = reconstruct_counts(perturbation.matrix, perturbed.joint_counts())
    truth = data.joint_counts()

    print(f"schema: {schema.joint_size} joint cells, gamma = {gamma:g}")
    print(f"{'cell':>22} {'true %':>8} {'reconstructed %':>16}")
    for cell in range(schema.joint_size):
        s, i = schema.decode(np.array([cell]))[0]
        label = f"{schema[0].categories[s]}/{schema[1].categories[i]}"
        print(f"{label:>22} {truth[cell] / n:>8.2%} {estimate[cell] / n:>16.2%}")

    # Sanity anchor: one binary question, Warner (1965) vs FRAPP.
    sensitive = (rng.random(n) < 0.23).astype(int)
    warner = WarnerRandomizedResponse(p=0.75)
    responses = warner.perturb(sensitive, seed=rng)
    warner_estimate = warner.estimate_proportion(responses)

    counts = np.bincount(responses, minlength=2).astype(float)
    frapp_matrix = GammaDiagonalMatrix(n=2, gamma=warner.gamma)
    frapp_estimate = reconstruct_counts(frapp_matrix, counts)[1] / n

    print(
        f"\nWarner check: true 23.0% | Warner estimator {warner_estimate:.1%} | "
        f"FRAPP n=2 reconstruction {frapp_estimate:.1%} (identical by theory)"
    )


if __name__ == "__main__":
    main()
