"""End-to-end association rules from privacy-preserving mining (HEALTH).

The paper's motivating scenario: a company mines correlations in
medical records that patients refuse to hand over in the clear
("adult females with malarial infections are also prone to contract
tuberculosis").  This example mines association rules from the HEALTH
database *after* every record has been perturbed under a strict
gamma = 19 guarantee, and compares the top rules against the ones found
on the original data.

Run:  python examples/health_rules.py [n_records]
"""

import sys

from repro import Session, generate_health, mine_exact
from repro.mining import association_rules


def show_rules(title: str, rules, schema, limit: int = 8) -> None:
    print(title)
    if not rules:
        print("  (none)")
    for rule in rules[:limit]:
        print(
            f"  {rule.label(schema):70s} "
            f"conf={rule.confidence:5.1%} sup={rule.support:5.1%} lift={rule.lift:4.2f}"
        )


def main() -> None:
    n_records = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    data = generate_health(n_records)
    schema = data.schema
    min_support, min_confidence = 0.05, 0.75

    truth = mine_exact(data, min_support)
    true_rules = association_rules(truth, min_confidence)
    show_rules("rules mined from the ORIGINAL database:", true_rules, schema)

    session = Session(schema, mechanism="det-gd", params={"gamma": 19.0})
    private = session.mine(data, min_support, seed=3)
    private_rules = association_rules(private, min_confidence)
    show_rules(
        "\nrules mined from the PERTURBED database (gamma=19):",
        private_rules,
        schema,
    )

    true_set = {(r.antecedent, r.consequent) for r in true_rules}
    private_set = {(r.antecedent, r.consequent) for r in private_rules}
    if true_set:
        recovered = len(true_set & private_set) / len(true_set)
        print(f"\nrecovered {recovered:.0%} of the original rules "
              f"({len(private_set - true_set)} spurious).")


if __name__ == "__main__":
    main()
