"""Quickstart: perturb a database under strict privacy, then mine it.

Walks the core FRAPP loop through the stable ``repro`` facade:

1. pick a privacy requirement (rho1, rho2) -> amplification bound gamma;
2. open a :class:`repro.Session` binding schema + mechanism + seed;
3. mine frequent itemsets from the perturbed data with ``session.mine``;
4. compare against mining the original data.

Run:  python examples/quickstart.py
"""

from repro import (
    PrivacyRequirement,
    Session,
    evaluate_mining,
    generate_census,
    mine_exact,
)


def main() -> None:
    # The paper's running privacy requirement: properties with prior
    # probability < 5% may never gain posterior probability > 50%.
    requirement = PrivacyRequirement(rho1=0.05, rho2=0.50)
    print(f"privacy requirement (rho1, rho2) = (5%, 50%)  ->  gamma = {requirement.gamma:g}")

    # A CENSUS-like categorical database (see repro.data.census).
    data = generate_census(n_records=25_000, seed=11)
    print(f"database: {data}")

    # One Session = schema + mechanism + seed.  DET-GD perturbs with the
    # optimal gamma-diagonal matrix; mine() runs Apriori over per-pass
    # reconstructed supports.
    session = Session(
        data.schema,
        mechanism="det-gd",
        params={"gamma": requirement.gamma},
        seed=12,
    )
    mined = session.mine(data, min_support=0.02)

    # Reference: exact mining on the original data.
    truth = mine_exact(data, min_support=0.02)

    print("\nfrequent itemsets per length (true vs reconstructed):")
    for length in sorted(truth.by_length):
        true_count = len(truth.by_length[length])
        found_count = len(mined.by_length.get(length, {}))
        print(f"  length {length}: {true_count:4d} true, {found_count:4d} reconstructed")

    errors = evaluate_mining(truth, mined)
    print("\nper-length errors (paper Section 7 metrics):")
    for length in errors.lengths():
        print(
            f"  length {length}: support error rho = {errors.rho[length]:7.1f}%   "
            f"sigma- = {errors.sigma_minus[length]:5.1f}%   "
            f"sigma+ = {errors.sigma_plus[length]:5.1f}%"
        )

    # The privacy side: what the perturbation actually did.
    matrix = session.mechanism.matrix_operator()
    print(
        f"\nunder the hood: each record was kept with probability "
        f"{matrix.keep_probability:.4f} and otherwise replaced "
        f"by a uniformly random record -- yet supports are recoverable, because "
        f"the reconstruction matrix has condition number "
        f"{matrix.condition_number():.1f} (the provable optimum)."
    )


if __name__ == "__main__":
    main()
