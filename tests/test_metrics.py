"""Tests for repro.metrics (accuracy and conditioning)."""

import math

import pytest

from repro.data.census import census_schema
from repro.data.health import health_schema
from repro.exceptions import ExperimentError, MiningError
from repro.metrics.accuracy import (
    MiningErrors,
    evaluate_mining,
    identity_errors,
    support_error,
)
from repro.metrics.conditioning import (
    condition_numbers_by_length,
    cp_condition_number,
    gamma_diagonal_condition_number,
    mask_condition_number,
)
from repro.mining.apriori import AprioriResult
from repro.mining.itemsets import Itemset

A, B, C = Itemset.of((0, 0)), Itemset.of((0, 1)), Itemset.of((1, 0))


class TestSupportError:
    def test_paper_formula(self):
        true = {A: 0.10, B: 0.20}
        est = {A: 0.11, B: 0.16}
        # (|0.01|/0.1 + |0.04|/0.2)/2 * 100 = (0.1 + 0.2)/2*100 = 15.
        assert support_error(true, est) == pytest.approx(15.0)

    def test_only_common_itemsets_counted(self):
        true = {A: 0.10, B: 0.20}
        est = {A: 0.10, C: 0.99}
        assert support_error(true, est) == pytest.approx(0.0)

    def test_empty_intersection_is_nan(self):
        assert math.isnan(support_error({A: 0.1}, {B: 0.1}))

    def test_zero_true_support_rejected(self):
        with pytest.raises(MiningError):
            support_error({A: 0.0}, {A: 0.1})


class TestIdentityErrors:
    def test_paper_formulas(self):
        true = {A: 0.1, B: 0.1}
        est = {A: 0.1, C: 0.1}
        plus, minus = identity_errors(true, est)
        assert plus == pytest.approx(50.0)   # C is a false positive
        assert minus == pytest.approx(50.0)  # B was missed

    def test_perfect(self):
        true = {A: 0.1}
        plus, minus = identity_errors(true, dict(true))
        assert (plus, minus) == (0.0, 0.0)

    def test_nothing_found(self):
        plus, minus = identity_errors({A: 0.1, B: 0.2}, {})
        assert (plus, minus) == (0.0, 100.0)

    def test_no_true_frequent_is_nan(self):
        plus, minus = identity_errors({}, {A: 0.1})
        assert math.isnan(plus) and math.isnan(minus)

    def test_false_positives_can_exceed_100(self):
        true = {A: 0.1}
        est = {B: 0.1, C: 0.1}
        plus, _ = identity_errors(true, est)
        assert plus == pytest.approx(200.0)


class TestEvaluateMining:
    def test_per_length_alignment(self):
        truth = AprioriResult(min_support=0.1)
        truth.by_length = {1: {A: 0.3, B: 0.2}, 2: {Itemset.of((0, 0), (1, 0)): 0.15}}
        est = AprioriResult(min_support=0.1)
        est.by_length = {1: {A: 0.33, B: 0.18}}
        errors = evaluate_mining(truth, est)
        assert errors.lengths() == [1, 2]
        assert errors.sigma_minus[2] == pytest.approx(100.0)
        assert errors.rho[1] == pytest.approx(10.0)

    def test_extra_length_in_estimate(self):
        truth = AprioriResult(min_support=0.1)
        truth.by_length = {1: {A: 0.3}}
        est = AprioriResult(min_support=0.1)
        est.by_length = {1: {A: 0.3}, 2: {Itemset.of((0, 0), (1, 0)): 0.2}}
        errors = evaluate_mining(truth, est)
        assert math.isnan(errors.sigma_plus[2])  # no true level-2 itemsets

    def test_mining_errors_dataclass(self):
        errors = MiningErrors()
        assert errors.lengths() == []


class TestConditioning:
    def test_det_gd_flat_at_paper_values(self):
        """CENSUS: 1 + 2000/18 = 112.1; HEALTH: 1 + 7500/18 = 417.7."""
        census = census_schema()
        values = {
            k: gamma_diagonal_condition_number(census, 19.0, k) for k in range(1, 7)
        }
        assert all(v == pytest.approx(2018 / 18) for v in values.values())
        health = health_schema()
        assert gamma_diagonal_condition_number(health, 19.0, 3) == pytest.approx(
            7518 / 18
        )

    def test_mask_exponential(self):
        census = census_schema()
        c2 = mask_condition_number(census, 19.0, 2)
        c4 = mask_condition_number(census, 19.0, 4)
        assert c4 == pytest.approx(c2**2, rel=1e-6)

    def test_cp_explodes_beyond_cut(self):
        census = census_schema()
        within = cp_condition_number(census, 19.0, 3)
        beyond = cp_condition_number(census, 19.0, 4)
        assert beyond > within * 1000

    def test_series_structure(self):
        series = condition_numbers_by_length(census_schema(), 19.0)
        assert set(series) == {"DET-GD", "RAN-GD", "MASK", "C&P"}
        assert series["DET-GD"] == series["RAN-GD"]
        lengths = sorted(series["MASK"])
        assert lengths == [1, 2, 3, 4, 5, 6]

    def test_fig4_crossover(self):
        """MASK starts below DET-GD but crosses above by length ~3 --
        the visual crossover of Fig. 4."""
        series = condition_numbers_by_length(census_schema(), 19.0)
        assert series["MASK"][1] < series["DET-GD"][1]
        assert series["MASK"][6] > series["DET-GD"][6] * 100

    def test_length_validation(self):
        with pytest.raises(ExperimentError):
            gamma_diagonal_condition_number(census_schema(), 19.0, 7)
        with pytest.raises(ExperimentError):
            mask_condition_number(census_schema(), 19.0, 0)
        with pytest.raises(ExperimentError):
            cp_condition_number(census_schema(), 19.0, 9)
