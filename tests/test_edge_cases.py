"""Edge-case and failure-injection tests across the stack.

Degenerate schemas, extreme parameters, numerically hostile inputs and
corrupted files -- the situations a downstream user hits first.
"""

import numpy as np
import pytest

from repro.core.engine import GammaDiagonalPerturbation
from repro.core.gamma_diagonal import GammaDiagonalMatrix
from repro.core.marginal import estimate_subset_supports
from repro.core.privacy import gamma_from_rho
from repro.core.randomized import RandomizedGammaDiagonal
from repro.data.dataset import CategoricalDataset
from repro.data.io import load_csv
from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError, FrappError
from repro.mining.counting import ExactSupportCounter, GammaDiagonalSupportEstimator
from repro.mining.itemsets import Itemset
from repro.mining.reconstructing import mine_exact


@pytest.fixture
def binary_schema():
    """The absolute minimum: one binary attribute (n = 2)."""
    return Schema([Attribute("bit", ["0", "1"])])


class TestDegenerateSchemas:
    def test_single_binary_attribute_end_to_end(self, binary_schema, rng):
        """The Warner-sized special case flows through the whole stack."""
        records = rng.integers(0, 2, size=(2000, 1))
        data = CategoricalDataset(binary_schema, records)
        engine = GammaDiagonalPerturbation(binary_schema, gamma=3.0)
        perturbed = engine.perturb(data, seed=0)
        estimator = GammaDiagonalSupportEstimator(perturbed, 3.0)
        estimates = estimator.supports([Itemset.of((0, 0)), Itemset.of((0, 1))])
        truth = ExactSupportCounter(data).supports(
            [Itemset.of((0, 0)), Itemset.of((0, 1))]
        )
        assert estimates.sum() == pytest.approx(1.0)
        assert np.allclose(estimates, truth, atol=0.06)

    def test_single_record_dataset(self, binary_schema):
        data = CategoricalDataset(binary_schema, [[1]])
        result = mine_exact(data, 0.5)
        assert result.frequent() == {Itemset.of((0, 1)): 1.0}

    def test_mining_constant_column(self, tiny_schema):
        """A column stuck at one value yields support-1 itemsets."""
        data = CategoricalDataset(tiny_schema, [[0, 1]] * 50)
        result = mine_exact(data, 0.9)
        assert result.support_of(Itemset.of((0, 0), (1, 1))) == 1.0


class TestExtremeParameters:
    def test_gamma_barely_above_one(self):
        """gamma -> 1+ is legal but numerically brutal: the matrix is
        almost uniform and the condition number diverges smoothly."""
        matrix = GammaDiagonalMatrix(n=10, gamma=1.0 + 1e-6)
        assert matrix.condition_number() > 1e6
        rhs = np.arange(10, dtype=float)
        assert np.allclose(matrix.matvec(matrix.solve(rhs)), rhs, atol=1e-6)

    def test_huge_gamma_is_identity_like(self):
        matrix = GammaDiagonalMatrix(n=10, gamma=1e12)
        assert matrix.diagonal == pytest.approx(1.0, abs=1e-10)
        assert matrix.condition_number() == pytest.approx(1.0, abs=1e-9)

    def test_extreme_privacy_requirement(self):
        gamma = gamma_from_rho(1e-6, 1 - 1e-6)
        assert gamma > 1e11
        GammaDiagonalMatrix(n=4, gamma=gamma)  # constructs fine

    def test_randomized_alpha_exactly_at_bound(self):
        bound = RandomizedGammaDiagonal.max_alpha(100, 19.0)
        randomized = RandomizedGammaDiagonal(100, 19.0, bound)
        r = randomized.draw_r(1000, seed=0)
        assert np.all(randomized.diagonal(r) >= -1e-12)
        assert np.all(randomized.off_diagonal(r) >= -1e-12)

    def test_estimate_supports_at_support_zero_and_one(self):
        for truth in (0.0, 1.0):
            from repro.core.marginal import perturbed_support_of

            observed = perturbed_support_of(truth, 19.0, 40, 4)
            assert estimate_subset_supports(observed, 19.0, 40, 4) == pytest.approx(
                truth, abs=1e-12
            )


class TestHostileInputs:
    def test_dataset_rejects_float_garbage(self, tiny_schema):
        # Float records are truncated by int64 coercion -- but NaN/inf
        # cannot be, and must raise rather than corrupt silently.
        with pytest.raises((DataError, ValueError)):
            CategoricalDataset(tiny_schema, np.array([[np.nan, 0.0]]))

    def test_corrupt_csv_ragged_rows(self, tiny_schema, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("color,size\nred,s\nblue\n")
        with pytest.raises(DataError):
            load_csv(tiny_schema, path)

    def test_corrupt_csv_extra_columns(self, tiny_schema, tmp_path):
        path = tmp_path / "wide.csv"
        path.write_text("color,size\nred,s,EXTRA\n")
        with pytest.raises(DataError):
            load_csv(tiny_schema, path)

    def test_all_library_errors_are_frapperrors(self):
        """One except-clause catches everything the library raises."""
        from repro import exceptions

        error_types = [
            getattr(exceptions, name)
            for name in dir(exceptions)
            if isinstance(getattr(exceptions, name), type)
            and issubclass(getattr(exceptions, name), Exception)
        ]
        for error_type in error_types:
            assert issubclass(error_type, (FrappError, Exception))
            if error_type not in (FrappError,):
                assert issubclass(error_type, FrappError) or error_type is FrappError


class TestSeedPlumbing:
    def test_shared_generator_advances(self, tiny_schema, tiny_dataset):
        """Passing one generator through two perturbations yields two
        different (but reproducible) outputs."""
        engine = GammaDiagonalPerturbation(tiny_schema, gamma=2.0)
        rng = np.random.default_rng(0)
        first = engine.perturb(tiny_dataset, seed=rng)
        second = engine.perturb(tiny_dataset, seed=rng)
        rng2 = np.random.default_rng(0)
        first_again = engine.perturb(tiny_dataset, seed=rng2)
        assert first == first_again
        assert first != second or tiny_dataset.n_records == 0

    def test_none_seed_runs(self, tiny_schema, tiny_dataset):
        engine = GammaDiagonalPerturbation(tiny_schema, gamma=2.0)
        perturbed = engine.perturb(tiny_dataset, seed=None)
        assert perturbed.n_records == tiny_dataset.n_records
