"""The solver portfolio: deterministic racing, rescue lanes, stats.

The load-bearing property is the determinism contract of
:mod:`repro.solvers.portfolio`: the accepted estimate is a pure
function of the system ``(A, y)`` -- identical bits whether lanes run
inline or raced in processes, and no matter which lane finishes first
(pinned here by injecting delays that force every finishing order).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from faultinject import solver_delay_env
from repro.core.reconstruction import reconstruct_counts
from repro.exceptions import ExperimentError, SolverError
from repro.solvers import (
    DELAY_ENV,
    GLOBAL_STATS,
    PortfolioStats,
    SolverPortfolio,
    portfolio_for,
    solver_delays,
)
from repro.stats.linalg import UniformOffDiagonalMatrix, residual_norm


@st.composite
def well_conditioned_systems(draw, max_n=8):
    """A diagonally dominant dense system and its observation vector."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    elements = st.floats(
        min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False
    )
    flat = draw(
        st.lists(elements, min_size=n * n + n, max_size=n * n + n)
    )
    matrix = np.asarray(flat[: n * n], dtype=float).reshape(n, n)
    matrix += np.eye(n) * (n + 1.0)  # diagonal dominance => well-conditioned
    observed = np.asarray(flat[n * n :], dtype=float) + 2.0
    return matrix, observed


def fresh_portfolio(**kwargs):
    kwargs.setdefault("stats", PortfolioStats())
    return SolverPortfolio(**kwargs)


class TestDeterminismContract:
    @given(well_conditioned_systems())
    def test_closed_lane_bit_identical_to_plain_solve(self, system):
        matrix, observed = system
        estimate = fresh_portfolio(mode="inline").solve(matrix, observed)
        np.testing.assert_array_equal(estimate, np.linalg.solve(matrix, observed))

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(well_conditioned_systems(max_n=5))
    def test_race_bit_identical_to_inline(self, system):
        matrix, observed = system
        inline = fresh_portfolio(mode="inline").solve(matrix, observed)
        raced = fresh_portfolio(mode="race").solve(matrix, observed)
        np.testing.assert_array_equal(inline, raced)

    @pytest.mark.parametrize(
        "delays",
        [
            {"closed": 0.2},
            {"closed": 0.1, "lstsq": 0.05},
            {"em": 0.2},
        ],
    )
    def test_delays_cannot_move_a_float(self, delays):
        # Force every finishing order: the slowest-possible closed lane
        # must still win, bit-identically, because acceptance walks the
        # priority order -- never arrival order.
        rng = np.random.default_rng(7)
        matrix = rng.normal(size=(4, 4)) + np.eye(4) * 5.0
        observed = rng.normal(size=4) + 2.0
        plain = fresh_portfolio(mode="race").solve(matrix, observed)
        stats = PortfolioStats()
        delayed = fresh_portfolio(mode="race", delays=delays, stats=stats).solve(
            matrix, observed
        )
        np.testing.assert_array_equal(plain, delayed)
        assert stats.wins == {"closed": 1}

    def test_delay_env_applies_and_overrides(self, monkeypatch):
        monkeypatch.setenv(DELAY_ENV, solver_delay_env(closed=0.05)[DELAY_ENV])
        rng = np.random.default_rng(11)
        matrix = rng.normal(size=(3, 3)) + np.eye(3) * 4.0
        observed = rng.normal(size=3) + 2.0
        stats = PortfolioStats()
        estimate = fresh_portfolio(mode="race", stats=stats).solve(matrix, observed)
        np.testing.assert_array_equal(estimate, np.linalg.solve(matrix, observed))
        assert stats.wins == {"closed": 1}

    def test_operator_systems_use_the_historical_closed_solve(self):
        matrix = UniformOffDiagonalMatrix(6, 19.0 / 24.0, 1.0 / 24.0)
        observed = np.arange(6, dtype=float) + 1.0
        estimate = fresh_portfolio().solve(matrix, observed)
        np.testing.assert_array_equal(estimate, matrix.solve(observed))

    def test_auto_mode_races_only_large_dense_systems(self):
        small = fresh_portfolio(race_threshold=64)
        assert small._should_race(np.eye(3)) is False
        assert small._should_race(np.eye(64)) is True
        assert small._should_race(UniformOffDiagonalMatrix(100, 0.5, 0.1)) is False


class TestRescueLanes:
    def test_singular_system_is_rescued_by_lstsq(self):
        # Rank-1 but consistent: closed errors, lstsq solves exactly.
        matrix = np.ones((3, 3))
        observed = np.full(3, 6.0)
        stats = PortfolioStats()
        estimate = fresh_portfolio(stats=stats).solve(matrix, observed)
        assert residual_norm(matrix, estimate, observed) <= 1e-6
        assert stats.errors == {"closed": 1}
        assert stats.wins == {"lstsq": 1}

    def test_em_lane_wins_when_alone(self):
        # The FRAPP marginal at gamma=19, n=4: a*I + b*J with
        # a=(gamma-1)x, b=x, x=1/(gamma+n-1) -- column-stochastic, the
        # regime EM's multiplicative update is exact for.
        matrix = UniformOffDiagonalMatrix(4, 18.0 / 22.0, 1.0 / 22.0).to_dense()
        true = np.array([10.0, 20.0, 30.0, 40.0])
        observed = matrix @ true
        stats = PortfolioStats()
        estimate = fresh_portfolio(
            solvers=("em",), residual_rtol=1e-6, stats=stats
        ).solve(matrix, observed)
        assert stats.wins == {"em": 1}
        assert residual_norm(matrix, estimate, observed) <= 1e-6
        np.testing.assert_allclose(estimate, true, rtol=1e-3)

    def test_every_lane_failing_raises_with_reasons(self):
        # Inconsistent singular system far beyond the tolerance: closed
        # errors, lstsq's least-squares residual fails the check, EM
        # diverges.  The error names every lane's reason.
        matrix = np.ones((3, 3))
        observed = np.array([1.0, 5.0, 20.0])
        stats = PortfolioStats()
        with pytest.raises(SolverError) as excinfo:
            fresh_portfolio(residual_rtol=1e-9, stats=stats).solve(matrix, observed)
        message = str(excinfo.value)
        assert "closed" in message and "lstsq" in message and "em" in message
        assert stats.wins == {}

    def test_race_mode_matches_inline_on_rescued_systems(self):
        matrix = np.ones((3, 3))
        observed = np.full(3, 6.0)
        inline = fresh_portfolio(mode="inline").solve(matrix, observed)
        raced = fresh_portfolio(mode="race").solve(matrix, observed)
        np.testing.assert_array_equal(inline, raced)


class TestValidationAndPlumbing:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ExperimentError):
            SolverPortfolio(solvers=())
        with pytest.raises(ExperimentError):
            SolverPortfolio(solvers=("closed", "closed"))
        with pytest.raises(ExperimentError):
            SolverPortfolio(solvers=("newton",))
        with pytest.raises(ExperimentError):
            SolverPortfolio(mode="temporal")
        with pytest.raises(ExperimentError):
            SolverPortfolio(residual_rtol=0.0)

    def test_rejects_non_vector_observations(self):
        with pytest.raises(SolverError):
            fresh_portfolio().solve(np.eye(2), np.eye(2))

    def test_solver_delays_parsing(self):
        assert solver_delays("em=0.2, lstsq=0.05") == {"em": 0.2, "lstsq": 0.05}
        assert solver_delays("") == {}
        with pytest.raises(ExperimentError):
            solver_delays("newton=1")
        with pytest.raises(ExperimentError):
            solver_delays("em=fast")

    def test_portfolio_for_mapping(self):
        assert portfolio_for(None) is None
        assert portfolio_for("closed") is None
        portfolio = portfolio_for("portfolio")
        assert isinstance(portfolio, SolverPortfolio)
        assert portfolio.stats is GLOBAL_STATS
        with pytest.raises(ExperimentError):
            portfolio_for("newton")

    def test_stats_rollup_and_summary(self):
        stats = PortfolioStats()
        portfolio = fresh_portfolio(mode="race", stats=stats)
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(3, 3)) + np.eye(3) * 4.0
        portfolio.solve(matrix, rng.normal(size=3) + 2.0)
        portfolio.solve(np.ones((3, 3)), np.full(3, 6.0))
        assert stats.cells == 2 and stats.raced == 2
        assert stats.cancelled >= 1  # em (at least) outlived both wins
        assert stats.as_rows()[0][0] == "closed"
        summary = stats.summary()
        assert "2 cell(s)" in summary and "closed won 1" in summary
        other = PortfolioStats()
        other.record_cell(False)
        other.record_win("closed")
        stats.merge(other)
        assert stats.cells == 3 and stats.wins["closed"] == 2
        stats.reset()
        assert stats.cells == 0 and stats.summary().startswith("solvers: 0 cell(s)")


class TestIntegration:
    def test_reconstruct_counts_portfolio_matches_solve(self):
        matrix = UniformOffDiagonalMatrix(5, 19.0 / 10.0, 1.0 / 10.0)
        observed = np.array([120.0, 80.0, 60.0, 90.0, 50.0])
        direct = reconstruct_counts(matrix, observed, method="solve")
        portfolio = reconstruct_counts(matrix, observed, method="portfolio")
        np.testing.assert_array_equal(direct, portfolio)

    def test_marginal_inversion_estimator_is_solver_invariant(self):
        # The portfolio plugs into per-subset marginal solves of the
        # generic columnar estimator (composites, warner); estimates
        # must not move by a bit.
        from repro.data.dataset import CategoricalDataset
        from repro.data.schema import Attribute, Schema
        from repro.mechanisms import CompositeMechanism
        from repro.mining.reconstructing import MechanismMiner

        schema = Schema(
            [
                Attribute("s", ["no", "yes"]),
                Attribute("b", [f"c{j}" for j in range(3)]),
            ]
        )
        rng = np.random.default_rng(9)
        data = CategoricalDataset(
            schema, np.column_stack([rng.integers(0, 2, 800), rng.integers(0, 3, 800)])
        )
        mechanism = CompositeMechanism.build(
            schema,
            [
                {"name": "warner", "n_attributes": 1, "params": {"p": 0.8}},
                {"name": "det-gd", "n_attributes": 1, "params": {"gamma": 7.0}},
            ],
        )
        miner = MechanismMiner(mechanism)
        plain = miner.mine(data, 0.05, seed=42)
        stats = PortfolioStats()
        raced = miner.mine(data, 0.05, seed=42, solver=SolverPortfolio(stats=stats))
        assert stats.cells > 0 and set(stats.wins) == {"closed"}
        assert plain.by_length.keys() == raced.by_length.keys()
        for length, level in plain.by_length.items():
            assert level == raced.by_length[length]
