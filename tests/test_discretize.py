"""Tests for repro.data.discretize."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.discretize import (
    discretize_equidepth,
    discretize_equiwidth,
    equidepth_edges,
    equiwidth_edges,
    interval_labels,
)
from repro.exceptions import DataError


class TestEquiwidthEdges:
    def test_basic(self):
        assert equiwidth_edges(0, 10, 2).tolist() == [0.0, 5.0, 10.0]

    def test_census_age_bins(self):
        """The paper's age attribute: (15-35], (35-55], (55-75], >75."""
        edges = equiwidth_edges(15, 95, 4)
        assert edges.tolist() == [15.0, 35.0, 55.0, 75.0, 95.0]

    def test_validation(self):
        with pytest.raises(DataError):
            equiwidth_edges(0, 10, 0)
        with pytest.raises(DataError):
            equiwidth_edges(5, 5, 2)


class TestEquidepthEdges:
    def test_quartiles(self):
        values = np.arange(1, 101)
        edges = equidepth_edges(values, 4)
        assert edges[0] == 1 and edges[-1] == 100
        assert edges[2] == pytest.approx(np.median(values))

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            equidepth_edges([], 3)


class TestAssignment:
    def test_half_open_convention(self):
        """Bins are (lo, hi] except the first, matching Table 1."""
        bins = discretize_equiwidth([15, 16, 35, 36, 75, 76], 15, 75, 3)
        assert bins.tolist() == [0, 0, 0, 1, 2, 2]

    def test_clip_top(self):
        bins = discretize_equiwidth([200], 15, 95, 4, clip=True)
        assert bins.tolist() == [3]

    def test_clip_bottom(self):
        bins = discretize_equiwidth([-5], 0, 10, 2, clip=True)
        assert bins.tolist() == [0]

    def test_no_clip_raises(self):
        with pytest.raises(DataError):
            discretize_equiwidth([200], 15, 95, 4, clip=False)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50)
    def test_bins_in_range(self, values, n_bins):
        bins = discretize_equiwidth(values, 0, 100, n_bins)
        assert np.all(bins >= 0) and np.all(bins < n_bins)

    def test_equidepth_balanced(self, rng):
        values = rng.normal(size=10_000)
        bins = discretize_equidepth(values, 5)
        counts = np.bincount(bins, minlength=5)
        assert counts.min() > 1500  # roughly 2000 each


class TestLabels:
    def test_closed_style(self):
        labels = interval_labels([0, 20, 40], open_ended_top=False)
        assert labels == ("(0-20]", "(20-40]")

    def test_open_top(self):
        labels = interval_labels([15, 35, 55, 75, 95], open_ended_top=True)
        assert labels[-1] == "> 75"
        assert labels[0] == "(15-35]"

    def test_float_formatting(self):
        labels = interval_labels([0.0, 0.5, 1.0], open_ended_top=False)
        assert labels == ("(0-0.5]", "(0.5-1]")

    def test_too_few_edges(self):
        with pytest.raises(DataError):
            interval_labels([1.0])
