"""Tests for repro.core.designer (the two-step FRAPP workflow)."""

import pytest

from repro.core.designer import design_mechanism
from repro.core.engine import (
    GammaDiagonalPerturbation,
    RandomizedGammaDiagonalPerturbation,
)
from repro.core.privacy import PrivacyRequirement
from repro.exceptions import PrivacyError


@pytest.fixture
def requirement():
    return PrivacyRequirement(rho1=0.05, rho2=0.50)


class TestDeterministicDesign:
    def test_returns_det_gd_engine(self, survey_schema, requirement):
        engine, report = design_mechanism(survey_schema, requirement)
        assert isinstance(engine, GammaDiagonalPerturbation)
        assert engine.gamma == pytest.approx(19.0)

    def test_report_values(self, survey_schema, requirement):
        _, report = design_mechanism(survey_schema, requirement)
        n = survey_schema.joint_size
        assert report.gamma == pytest.approx(19.0)
        assert report.condition_number == pytest.approx((19 + n - 1) / 18)
        assert report.keep_probability == pytest.approx(19 / (19 + n - 1))
        assert report.worst_posterior == pytest.approx(0.50)
        assert report.posterior_range is None

    def test_engine_satisfies_requirement(self, survey_schema, requirement):
        engine, _ = design_mechanism(survey_schema, requirement)
        assert requirement.admits(engine.matrix.to_dense())

    def test_summary_readable(self, survey_schema, requirement):
        _, report = design_mechanism(survey_schema, requirement)
        text = report.summary()
        assert "gamma = 19" in text
        assert "condition number" in text


class TestRandomizedDesign:
    def test_returns_ran_gd_engine(self, survey_schema, requirement):
        engine, report = design_mechanism(
            survey_schema, requirement, relative_alpha=0.5
        )
        assert isinstance(engine, RandomizedGammaDiagonalPerturbation)
        assert report.posterior_range is not None

    def test_posterior_range_brackets_deterministic(self, survey_schema, requirement):
        _, report = design_mechanism(survey_schema, requirement, relative_alpha=0.5)
        lo, mid, hi = report.posterior_range
        assert lo < mid < hi
        assert mid == pytest.approx(0.50, abs=0.01)

    def test_summary_mentions_range(self, survey_schema, requirement):
        _, report = design_mechanism(survey_schema, requirement, relative_alpha=0.5)
        assert "range" in report.summary()

    def test_alpha_validation(self, survey_schema, requirement):
        with pytest.raises(PrivacyError):
            design_mechanism(survey_schema, requirement, relative_alpha=1.5)

    def test_end_to_end_perturbation(self, survey_schema, survey_dataset, requirement):
        engine, _ = design_mechanism(survey_schema, requirement, relative_alpha=0.3)
        perturbed = engine.perturb(survey_dataset, seed=0)
        assert perturbed.n_records == survey_dataset.n_records
