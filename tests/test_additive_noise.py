"""Tests for repro.baselines.additive_noise (Agrawal-Srikant 2000)."""

import numpy as np
import pytest

from repro.baselines.additive_noise import AdditiveNoisePerturbation
from repro.exceptions import DataError, ReconstructionError


class TestConstruction:
    def test_validation(self):
        with pytest.raises(DataError):
            AdditiveNoisePerturbation(0.0)
        with pytest.raises(DataError):
            AdditiveNoisePerturbation(1.0, kind="laplace")


class TestPerturbation:
    def test_uniform_noise_bounds(self, rng):
        op = AdditiveNoisePerturbation(scale=2.0, kind="uniform")
        values = np.zeros(10_000)
        perturbed = op.perturb(values, seed=rng)
        assert np.all(np.abs(perturbed) <= 2.0)
        assert perturbed.std() == pytest.approx(2.0 / np.sqrt(3), rel=0.05)

    def test_gaussian_noise_scale(self, rng):
        op = AdditiveNoisePerturbation(scale=1.5, kind="gaussian")
        perturbed = op.perturb(np.zeros(20_000), seed=rng)
        assert perturbed.std() == pytest.approx(1.5, rel=0.05)

    def test_mean_preserved(self, rng):
        op = AdditiveNoisePerturbation(scale=3.0)
        values = rng.uniform(10, 20, size=20_000)
        perturbed = op.perturb(values, seed=rng)
        assert perturbed.mean() == pytest.approx(values.mean(), abs=0.1)

    def test_input_validation(self):
        with pytest.raises(DataError):
            AdditiveNoisePerturbation(1.0).perturb(np.zeros((2, 2)))


class TestNoiseDensity:
    def test_uniform_density(self):
        op = AdditiveNoisePerturbation(scale=2.0, kind="uniform")
        assert op.noise_density(np.array([0.0]))[0] == pytest.approx(0.25)
        assert op.noise_density(np.array([2.5]))[0] == 0.0

    def test_gaussian_density_peak(self):
        op = AdditiveNoisePerturbation(scale=1.0, kind="gaussian")
        assert op.noise_density(np.array([0.0]))[0] == pytest.approx(
            1.0 / np.sqrt(2 * np.pi)
        )

    def test_densities_integrate_to_one(self):
        grid = np.linspace(-10, 10, 20_001)
        for kind in ("uniform", "gaussian"):
            op = AdditiveNoisePerturbation(scale=1.3, kind=kind)
            integral = np.trapezoid(op.noise_density(grid), grid)
            assert integral == pytest.approx(1.0, abs=1e-3)


class TestIntervalPrivacy:
    def test_uniform(self):
        op = AdditiveNoisePerturbation(scale=2.0, kind="uniform")
        assert op.interval_privacy(0.95) == pytest.approx(3.8)

    def test_gaussian_wider_than_uniform_at_high_confidence(self):
        u = AdditiveNoisePerturbation(scale=1.0, kind="uniform")
        g = AdditiveNoisePerturbation(scale=1.0, kind="gaussian")
        assert g.interval_privacy(0.99) > u.interval_privacy(0.99)

    def test_validation(self):
        with pytest.raises(DataError):
            AdditiveNoisePerturbation(1.0).interval_privacy(1.0)


class TestReconstruction:
    def test_recovers_bimodal_distribution(self, rng):
        """The AS algorithm's headline demo: recover a clearly bimodal
        shape from heavily noised values."""
        true = np.concatenate(
            [rng.normal(2.0, 0.4, size=6000), rng.normal(8.0, 0.4, size=4000)]
        )
        op = AdditiveNoisePerturbation(scale=2.0, kind="uniform")
        perturbed = op.perturb(true, seed=rng)
        edges = np.linspace(0, 10, 21)
        estimate = op.reconstruct_distribution(perturbed, edges)

        truth_hist, _ = np.histogram(true, bins=edges)
        truth = truth_hist / truth_hist.sum()
        assert estimate.sum() == pytest.approx(1.0)
        # The two modes are recovered at the right locations.
        assert estimate[3:5].sum() > 0.25
        assert estimate[15:17].sum() > 0.15
        assert np.abs(estimate - truth).sum() < 0.5

    def test_beats_raw_perturbed_histogram(self, rng):
        true = np.concatenate(
            [rng.normal(3.0, 0.5, size=5000), rng.normal(7.0, 0.5, size=5000)]
        )
        op = AdditiveNoisePerturbation(scale=2.5, kind="uniform")
        perturbed = op.perturb(true, seed=rng)
        edges = np.linspace(0, 10, 21)

        truth_hist, _ = np.histogram(true, bins=edges)
        truth = truth_hist / truth_hist.sum()
        raw_hist, _ = np.histogram(np.clip(perturbed, 0, 10 - 1e-9), bins=edges)
        raw = raw_hist / raw_hist.sum()
        estimate = op.reconstruct_distribution(perturbed, edges)

        assert np.abs(estimate - truth).sum() < np.abs(raw - truth).sum()

    def test_validation(self):
        op = AdditiveNoisePerturbation(1.0)
        with pytest.raises(ReconstructionError):
            op.reconstruct_distribution(np.array([]), [0, 1])
        with pytest.raises(ReconstructionError):
            op.reconstruct_distribution(np.ones(5), [0.0])
        with pytest.raises(ReconstructionError):
            op.reconstruct_distribution(np.ones(5), [0.0, 1.0, 0.5])

    def test_all_outliers_rejected(self):
        op = AdditiveNoisePerturbation(scale=0.5, kind="uniform")
        with pytest.raises(ReconstructionError):
            # Values far outside the grid carry no kernel mass.
            op.reconstruct_distribution(np.array([100.0, 200.0]), np.linspace(0, 1, 5))
