"""Tests for repro.stats.kronecker and the matrix-free composite path.

Three layers, mirroring how wide-schema reconstruction is built up:

* the :class:`KroneckerOperator` algebra against dense ``np.kron``
  references (property-based over mixed UODM/dense factors);
* the composite mechanism's operator views (satellite regression tests
  for the silent-``None``/ordering bug in ``marginal_matrix``);
* end-to-end wide-schema reconstruction: a 50-attribute composite whose
  joint domain (``4**50``) could never be materialised perturbs,
  reconstructs and mines -- bit-identically across worker counts and
  dispatch modes.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import ExperimentError, MatrixError
from repro.mechanisms import CompositeMechanism
from repro.mining.counting import ExactSupportCounter
from repro.mining.itemsets import Itemset
from repro.stats import KroneckerOperator, UniformOffDiagonalMatrix
from repro.stats.kronecker import DENSE_CELL_CAP
from repro.stats.linalg import condition_number as dense_condition_number


def _schema(*cards):
    return Schema(
        [
            Attribute(f"a{i}", [f"c{i}{j}" for j in range(card)])
            for i, card in enumerate(cards)
        ]
    )


def _composite(schema, part_specs):
    return CompositeMechanism.build(schema, part_specs)


def _dense(factor):
    return factor.to_dense() if isinstance(factor, UniformOffDiagonalMatrix) else factor


def _kron_fold(factors):
    result = _dense(factors[0])
    for factor in factors[1:]:
        result = np.kron(result, _dense(factor))
    return result


# ----------------------------------------------------------------------
# hypothesis strategies: mixed well-conditioned factor lists
# ----------------------------------------------------------------------
_uodm_factor = st.builds(
    UniformOffDiagonalMatrix,
    n=st.integers(min_value=1, max_value=4),
    a=st.floats(min_value=0.1, max_value=3.0),
    b=st.floats(min_value=0.0, max_value=2.0),
)


@st.composite
def _dense_factor(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    # Diagonally dominant: comfortably invertible and well conditioned.
    return rng.uniform(0.0, 1.0, size=(n, n)) + n * np.eye(n)


_factor = st.one_of(_uodm_factor, _dense_factor())
_factors = st.lists(_factor, min_size=1, max_size=4)


class TestKroneckerAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(factors=_factors, seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_matvec_matches_dense_kron(self, factors, seed):
        op = KroneckerOperator(factors)
        dense = _kron_fold(factors)
        v = np.random.default_rng(seed).normal(size=op.n)
        assert np.allclose(op.matvec(v), dense @ v, rtol=1e-10, atol=1e-10)

    @settings(max_examples=60, deadline=None)
    @given(factors=_factors, seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_solve_matches_dense_kron(self, factors, seed):
        op = KroneckerOperator(factors)
        dense = _kron_fold(factors)
        rhs = np.random.default_rng(seed).normal(size=op.n)
        assert np.allclose(
            op.solve(rhs), np.linalg.solve(dense, rhs), rtol=1e-8, atol=1e-8
        )

    @settings(max_examples=60, deadline=None)
    @given(factors=_factors)
    def test_to_dense_is_bit_identical_to_kron_fold(self, factors):
        # Not merely close: to_dense must reproduce the old dense
        # left-fold exactly, or golden fixtures built on it would drift.
        assert np.array_equal(KroneckerOperator(factors).to_dense(), _kron_fold(factors))

    @settings(max_examples=40, deadline=None)
    @given(factors=_factors)
    def test_condition_number_is_product_of_factors(self, factors):
        op = KroneckerOperator(factors)
        assert op.condition_number() == pytest.approx(
            dense_condition_number(_kron_fold(factors)), rel=1e-6
        )

    @settings(max_examples=40, deadline=None)
    @given(factors=_factors, seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_inverse_roundtrips(self, factors, seed):
        op = KroneckerOperator(factors)
        v = np.random.default_rng(seed).normal(size=op.n)
        assert np.allclose(op.inverse().matvec(op.matvec(v)), v, rtol=1e-8, atol=1e-8)
        assert np.allclose(
            op.inverse().to_dense(), np.linalg.inv(_kron_fold(factors)), atol=1e-8
        )

    def test_nested_operators_flatten(self):
        a = UniformOffDiagonalMatrix(n=2, a=1.0, b=0.5)
        b = np.array([[2.0, 1.0], [0.0, 3.0]])
        nested = KroneckerOperator([KroneckerOperator([a, b]), a])
        assert len(nested.factors) == 3
        assert np.array_equal(nested.to_dense(), _kron_fold([a, b, a]))

    def test_gamma_diagonal_factor_stays_closed_form(self):
        from repro.core.gamma_diagonal import GammaDiagonalMatrix

        gd = GammaDiagonalMatrix(gamma=19.0, n=4)
        op = KroneckerOperator([gd, gd])
        # Coerced through as_uniform_family(): no dense factor present.
        assert all(
            isinstance(f, UniformOffDiagonalMatrix) for f in op.factors
        )
        assert np.allclose(op.to_dense(), np.kron(gd.to_dense(), gd.to_dense()))
        assert op.condition_number() == pytest.approx(gd.condition_number() ** 2)


class TestKroneckerValidation:
    def test_needs_at_least_one_factor(self):
        with pytest.raises(MatrixError):
            KroneckerOperator([])

    def test_rejects_non_square_factor(self):
        with pytest.raises(MatrixError):
            KroneckerOperator([np.ones((2, 3))])

    def test_rejects_bad_vector_shape(self):
        op = KroneckerOperator([np.eye(2), np.eye(3)])
        with pytest.raises(MatrixError):
            op.matvec(np.ones(5))
        with pytest.raises(MatrixError):
            op.solve(np.ones(7))

    def test_singular_uodm_factor_rejected(self):
        singular = UniformOffDiagonalMatrix(n=2, a=0.0, b=1.0)
        op = KroneckerOperator([singular, np.eye(3)])
        assert op.is_singular()
        with pytest.raises(MatrixError):
            op.solve(np.ones(6))
        with pytest.raises(MatrixError):
            op.inverse()

    def test_singular_dense_factor_rejected(self):
        op = KroneckerOperator([np.eye(2), np.zeros((3, 3))])
        assert op.is_singular()
        with pytest.raises(MatrixError):
            op.solve(np.ones(6))

    def test_solve_atol_threads_to_uodm_factors(self):
        near = UniformOffDiagonalMatrix(n=3, a=1e-13, b=1.0)
        op = KroneckerOperator([near])
        with pytest.raises(MatrixError):
            op.solve(np.ones(3))
        assert np.all(np.isfinite(op.solve(np.ones(3), atol=0.0)))


class TestKroneckerWideExactness:
    def test_exact_python_int_dimensions(self):
        # 100 binary factors: n = 2**100 overflows any fixed-width
        # integer; the operator must report it exactly.
        factors = [UniformOffDiagonalMatrix(n=2, a=1.0, b=0.1)] * 100
        op = KroneckerOperator(factors)
        assert op.n == 2**100
        assert op.shape == (2**100, 2**100)
        # And its condition number is still an O(#factors) closed form.
        single = factors[0].condition_number()
        assert op.condition_number() == pytest.approx(single**100, rel=1e-9)

    def test_to_dense_cap_refuses_wide_operators(self):
        op = KroneckerOperator([UniformOffDiagonalMatrix(n=4, a=1.0, b=0.1)] * 50)
        assert op.n == 4**50
        with pytest.raises(MatrixError, match="refusing to densify"):
            op.to_dense()
        # An explicit larger-but-still-impossible cap also refuses
        # before any allocation is attempted.
        with pytest.raises(MatrixError):
            op.to_dense(max_cells=DENSE_CELL_CAP * 2)

    def test_cap_boundary_is_inclusive(self):
        op = KroneckerOperator([np.eye(3)])
        assert np.array_equal(op.to_dense(max_cells=9), np.eye(3))
        with pytest.raises(MatrixError):
            op.to_dense(max_cells=8)


class TestCompositeOperators:
    """Satellite regressions: composite marginal/joint operator views."""

    @pytest.fixture
    def composite(self):
        schema = _schema(2, 3, 4)
        return _composite(
            schema,
            [
                {"name": "warner", "n_attributes": 1, "params": {"p": 0.8}},
                {"name": "det-gd", "n_attributes": 2, "params": {"gamma": 7.0}},
            ],
        )

    def test_matrix_returns_operator_not_dense(self, composite):
        op = composite.matrix()
        assert isinstance(op, KroneckerOperator)
        dense = op.to_dense()
        assert dense.shape == (24, 24)
        assert np.allclose(dense.sum(axis=0), 1.0)

    def test_marginal_matrix_never_returns_none(self, composite):
        # The old implementation fell through to ``return None`` when a
        # guard failed; every path now returns an operator or raises.
        for positions in [(0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]:
            op = composite.marginal_matrix(positions)
            assert op is not None
            assert op.shape[0] == composite.schema.subset_size(positions)

    def test_marginal_matrix_rejects_unsorted_positions(self, composite):
        # Unsorted cross-part subsets would silently disagree with the
        # factor order; they must raise, not reorder.
        with pytest.raises(ExperimentError, match="strictly increasing"):
            composite.marginal_matrix((2, 0))
        with pytest.raises(ExperimentError, match="strictly increasing"):
            composite.marginal_matrix((1, 1))

    def test_marginal_matrix_rejects_empty_and_out_of_range(self, composite):
        with pytest.raises(ExperimentError, match="non-empty"):
            composite.marginal_matrix(())
        with pytest.raises(ExperimentError):
            composite.marginal_matrix((0, 3))
        with pytest.raises(ExperimentError):
            composite.marginal_matrix((-1,))

    def test_cross_part_marginal_matches_dense_kron(self, composite):
        # (0, 2): Warner's only column with the second det-gd column.
        op = composite.marginal_matrix((0, 2))
        warner, detgd = composite.parts
        expected = np.kron(
            warner.marginal_matrix((0,)), detgd.marginal_matrix((1,))
        )
        assert np.allclose(op.to_dense(), expected)

    def test_additive_noise_operator_matches_dense(self):
        from repro.mechanisms import create

        schema = _schema(3, 4)
        mech = create("additive-noise", schema, scale=1.0)
        assert np.array_equal(mech.matrix_operator().to_dense(), mech.matrix())
        assert np.array_equal(
            mech.marginal_operator((1,)).to_dense(), mech.marginal_matrix((1,))
        )


WIDE_ATTRS = 50


@pytest.fixture(scope="module")
def wide_schema():
    return _schema(*([4] * WIDE_ATTRS))


@pytest.fixture(scope="module")
def wide_composite(wide_schema):
    # High per-part gamma: near-identity perturbation, so reconstruction
    # accuracy is checkable on modest record counts.
    return _composite(
        wide_schema,
        [
            {"name": "det-gd", "n_attributes": 1, "params": {"gamma": 400.0}}
            for _ in range(WIDE_ATTRS)
        ],
    )


@pytest.fixture(scope="module")
def wide_dataset(wide_schema):
    rng = np.random.default_rng(7)
    n = 4000
    records = rng.integers(0, 4, size=(n, WIDE_ATTRS))
    # Plant a frequent pattern so mining has something to find.
    records[: n // 2, 0] = 0
    records[: n // 2, 17] = 1
    records[: n // 2, 49] = 2
    return CategoricalDataset(wide_schema, records)


class TestWideSchema:
    def test_joint_size_is_exact(self, wide_schema):
        assert wide_schema.joint_size == 4**50
        assert isinstance(wide_schema.joint_size, int)
        # 4**50 is divisible by 2**64: an int64/uint64 joint size would
        # have silently wrapped to 0 here.
        assert wide_schema.joint_size % (2**64) == 0
        assert wide_schema.subset_size((0, 17, 49)) == 64

    def test_wide_matrix_is_implicit_and_accountable(self, wide_composite):
        op = wide_composite.matrix()
        assert isinstance(op, KroneckerOperator)
        assert op.n == 4**50
        part_cond = wide_composite.parts[0].engine.matrix.condition_number()
        assert op.condition_number() == pytest.approx(part_cond**50, rel=1e-9)
        with pytest.raises(MatrixError):
            op.to_dense()

    def test_accountant_reports_wide_condition_number(self, wide_composite):
        from repro.mechanisms import PrivacyAccountant

        statement = PrivacyAccountant().statement(wide_composite)
        part_cond = wide_composite.parts[0].engine.matrix.condition_number()
        assert statement.condition_number == pytest.approx(part_cond**50, rel=1e-9)
        assert math.isfinite(statement.condition_number)

    def test_wide_reconstruction_is_accurate(self, wide_composite, wide_dataset):
        itemsets = [
            Itemset.of((0, 0)),
            Itemset.of((17, 1)),
            Itemset.of((0, 0), (17, 1)),
            Itemset.of((0, 0), (17, 1), (49, 2)),
        ]
        truth = ExactSupportCounter(wide_dataset).supports(itemsets)
        estimator = wide_composite.build_estimator(wide_dataset, seed=3)
        estimated = estimator.supports(itemsets)
        assert np.abs(estimated - truth).max() < 0.05

    def test_wide_pipeline_bit_identical_across_layouts(
        self, wide_composite, wide_dataset
    ):
        """Spawn-seeded layouts (worker counts x dispatch modes) must
        produce bit-identical estimates on a joint domain far beyond
        any materialisable count vector."""
        itemsets = [
            Itemset.of((0, 0)),
            Itemset.of((3, 2)),
            Itemset.of((0, 0), (17, 1)),
            Itemset.of((0, 0), (17, 1), (49, 2)),
        ]
        reference = None
        for workers, dispatch in [(2, "pickle"), (4, "pickle"), (2, "shm")]:
            estimates = wide_composite.build_estimator(
                wide_dataset,
                seed=11,
                workers=workers,
                chunk_size=512,
                dispatch=dispatch,
            ).supports(itemsets)
            if reference is None:
                reference = estimates
            else:
                assert np.array_equal(estimates, reference), (workers, dispatch)

    def test_wide_end_to_end_mining(self, wide_composite, wide_dataset):
        """Perturb -> reconstruct -> mine without the joint ever existing."""
        from repro.mining.reconstructing import MechanismMiner

        miner = MechanismMiner(wide_composite)
        result = miner.mine(
            wide_dataset, min_support=0.3, seed=5, workers=2, chunk_size=1024
        )
        frequent_1 = result.by_length.get(1, {})
        assert Itemset.of((0, 0)) in frequent_1
        assert Itemset.of((17, 1)) in frequent_1
        frequent_2 = result.by_length.get(2, {})
        assert Itemset.of((0, 0), (17, 1)) in frequent_2


class TestBitmapSubsetCounts:
    def test_matches_dataset_subset_counts(self):
        from repro.mining.kernels.bitmap import TransactionBitmaps

        schema = _schema(2, 3, 4)
        rng = np.random.default_rng(0)
        records = np.stack(
            [rng.integers(0, c, 500) for c in schema.cardinalities], axis=1
        )
        dataset = CategoricalDataset(schema, records)
        bitmaps = TransactionBitmaps.from_dataset(dataset)
        for positions in [(0,), (1,), (2,), (0, 2), (1, 2), (0, 1, 2)]:
            assert np.array_equal(
                bitmaps.subset_counts(positions), dataset.subset_counts(positions)
            )

    def test_validates_positions(self):
        from repro.exceptions import DataError
        from repro.mining.kernels.bitmap import TransactionBitmaps

        schema = _schema(2, 3)
        bitmaps = TransactionBitmaps.from_records(schema, np.zeros((4, 2), dtype=int))
        with pytest.raises(DataError):
            bitmaps.subset_counts(())
        with pytest.raises(DataError):
            bitmaps.subset_counts((0, 0))
        with pytest.raises(DataError):
            bitmaps.subset_counts((5,))
