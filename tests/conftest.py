"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema


@pytest.fixture
def rng():
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_schema():
    """Two attributes (2 x 3), joint size 6 -- small enough to enumerate."""
    return Schema(
        [
            Attribute("color", ["red", "blue"]),
            Attribute("size", ["s", "m", "l"]),
        ]
    )


@pytest.fixture
def survey_schema():
    """Three attributes (3 x 2 x 2), joint size 12."""
    return Schema(
        [
            Attribute("smokes", ["never", "former", "current"]),
            Attribute("sex", ["F", "M"]),
            Attribute("income", ["low", "high"]),
        ]
    )


@pytest.fixture
def tiny_dataset(tiny_schema):
    """Eight fixed records over the tiny schema."""
    records = [
        [0, 0],
        [0, 1],
        [0, 1],
        [1, 2],
        [1, 0],
        [0, 2],
        [1, 1],
        [0, 1],
    ]
    return CategoricalDataset(tiny_schema, records)


@pytest.fixture
def survey_dataset(survey_schema, rng):
    """A skewed, correlated 5000-record dataset over survey_schema."""
    n = 5000
    smokes = rng.choice(3, size=n, p=[0.6, 0.25, 0.15])
    sex = rng.choice(2, size=n, p=[0.5, 0.5])
    income = np.where(
        smokes == 0,
        rng.choice(2, size=n, p=[0.4, 0.6]),
        rng.choice(2, size=n, p=[0.7, 0.3]),
    )
    return CategoricalDataset(survey_schema, np.stack([smokes, sex, income], axis=1))
