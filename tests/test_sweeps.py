"""Tests for repro.experiments.sweeps."""

import pytest

from repro.data.census import generate_census
from repro.data.health import generate_health
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import (
    classification_sweep,
    gamma_sweep,
    sample_size_sweep,
)


@pytest.fixture(scope="module")
def small_census():
    return generate_census(8000, seed=5)


class TestGammaSweep:
    def test_structure(self, small_census):
        series = gamma_sweep(
            small_census,
            gammas=(9.0, 99.0),
            config=ExperimentConfig(seed=1),
            length=3,
        )
        assert set(series) == {"rho", "sigma_minus"}
        assert set(series["rho"]) == {9.0, 99.0}

    def test_accuracy_improves_with_gamma(self, small_census):
        series = gamma_sweep(
            small_census, gammas=(5.0, 199.0), config=ExperimentConfig(seed=2), length=3
        )
        assert series["rho"][199.0] < series["rho"][5.0]

    def test_invalid_gamma(self, small_census):
        with pytest.raises(ExperimentError):
            gamma_sweep(small_census, gammas=(1.0,))


class TestSampleSizeSweep:
    def test_structure_and_trend(self):
        series = sample_size_sweep(
            generate_census, sizes=(4000, 30_000), config=ExperimentConfig(seed=3)
        )
        assert set(series["rho"]) == {4000, 30_000}
        assert series["rho"][30_000] < series["rho"][4000]

    def test_too_small_rejected(self):
        with pytest.raises(ExperimentError):
            sample_size_sweep(generate_census, sizes=(10,))


class TestClassificationSweep:
    def test_structure(self):
        train = generate_health(6000, seed=6)
        test = generate_health(2000, seed=7)
        series = classification_sweep(
            train, test, "HEALTH", gammas=(19.0, 99.0), seed=8
        )
        assert set(series) == {"private", "exact", "majority"}
        exact_values = set(series["exact"].values())
        assert len(exact_values) == 1, "exact accuracy is a flat reference"
        for acc in series["private"].values():
            assert 0.0 <= acc <= 1.0

    def test_reference_lines_sensible(self):
        train = generate_health(6000, seed=9)
        test = generate_health(2000, seed=10)
        series = classification_sweep(train, test, "HEALTH", gammas=(49.0,), seed=11)
        exact = next(iter(series["exact"].values()))
        majority = next(iter(series["majority"].values()))
        assert exact >= majority
