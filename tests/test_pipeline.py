"""Tests for the streaming/multi-worker pipeline (repro.pipeline).

The load-bearing guarantees:

* chunked execution with ``workers=1`` is bit-identical to the one-shot
  ``engine.perturb()`` for the same seed, for any chunk size;
* accumulated counts are invariant to the chunk size at ``workers=1``
  and invariant to the worker count under spawn seeding;
* the accumulated-count support estimator matches the dataset-backed
  estimator exactly, so streaming mining equals one-shot mining.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    GammaDiagonalPerturbation,
    MatrixPerturbation,
    RandomizedGammaDiagonalPerturbation,
)
from repro.core.gamma_diagonal import GammaDiagonalMatrix
from repro.data.census import generate_census
from repro.data.dataset import CategoricalDataset
from repro.data.io import iter_csv_chunks, save_csv_chunks
from repro.exceptions import DataError, ExperimentError, MiningError
from repro.mining.counting import GammaDiagonalSupportEstimator
from repro.mining.itemsets import all_items
from repro.mining.reconstructing import DetGDMiner
from repro.pipeline import (
    AccumulatedSupportEstimator,
    JointCountAccumulator,
    PerturbationPipeline,
    iter_record_chunks,
    mine_stream,
    reconstruct_stream,
    stream_perturbed_counts,
)

GAMMA = 19.0


@pytest.fixture(scope="module")
def census():
    return generate_census(8_000, seed=11)


@pytest.fixture(scope="module")
def det_engine(census):
    return GammaDiagonalPerturbation(census.schema, GAMMA)


# ----------------------------------------------------------------------
# chunk iteration
# ----------------------------------------------------------------------
class TestChunkIteration:
    def test_dataset_is_resliced(self, census):
        chunks = list(iter_record_chunks(census, census.schema, 3_000))
        assert [c.shape[0] for c in chunks] == [3_000, 3_000, 2_000]
        assert np.array_equal(np.concatenate(chunks), census.records)

    def test_iterable_items_are_resliced_not_coalesced(self, census):
        parts = [census.records[:100], census.records[100:150]]
        chunks = list(iter_record_chunks(parts, census.schema, 70))
        assert [c.shape[0] for c in chunks] == [70, 30, 50]

    def test_schema_mismatch_rejected(self, census, tiny_dataset):
        with pytest.raises(DataError):
            list(iter_record_chunks(tiny_dataset, census.schema, 100))

    def test_bad_shape_rejected(self, census):
        with pytest.raises(DataError):
            list(iter_record_chunks(np.zeros((5, 99), dtype=np.int64), census.schema, 10))

    def test_bad_chunk_size_rejected(self, census):
        with pytest.raises(DataError):
            list(iter_record_chunks(census, census.schema, 0))

    def test_dataset_iter_chunks(self, census):
        chunks = list(census.iter_chunks(3_000))
        assert all(isinstance(c, CategoricalDataset) for c in chunks)
        assert sum(c.n_records for c in chunks) == census.n_records
        assert np.array_equal(
            np.concatenate([c.records for c in chunks]), census.records
        )

    def test_csv_chunk_roundtrip(self, census, tmp_path):
        path = tmp_path / "stream.csv"
        written = save_csv_chunks(census.schema, census.iter_chunks(1_500), path)
        assert written == census.n_records
        back = list(iter_csv_chunks(census.schema, path, 2_000))
        assert [c.n_records for c in back] == [2_000, 2_000, 2_000, 2_000]
        assert np.array_equal(
            np.concatenate([c.records for c in back]), census.records
        )

    def test_perturb_stream_to_csv_roundtrip(self, census, det_engine, tmp_path):
        """Pipeline output streams straight to disk and back."""
        path = tmp_path / "perturbed.csv"
        pipeline = PerturbationPipeline(det_engine, chunk_size=2_000)
        written = save_csv_chunks(
            census.schema, pipeline.perturb_stream(census, seed=42), path
        )
        assert written == census.n_records
        back = np.concatenate(
            [c.records for c in iter_csv_chunks(census.schema, path, 3_000)]
        )
        assert np.array_equal(back, det_engine.perturb(census, seed=42).records)

    def test_csv_chunks_header_validated(self, census, tiny_schema, tmp_path):
        path = tmp_path / "stream.csv"
        save_csv_chunks(census.schema, census.iter_chunks(4_000), path)
        with pytest.raises(DataError):
            next(iter_csv_chunks(tiny_schema, path, 100))


# ----------------------------------------------------------------------
# accumulator
# ----------------------------------------------------------------------
class TestAccumulator:
    def test_matches_dataset_counts(self, census):
        acc = JointCountAccumulator(census.schema)
        for chunk in census.iter_chunks(1_000):
            acc.update(chunk)
        assert acc.n_records == census.n_records
        assert np.array_equal(acc.counts, census.joint_counts())

    def test_accepts_records_and_joint_indices(self, census):
        by_records = JointCountAccumulator(census.schema).update(census.records)
        by_joint = JointCountAccumulator(census.schema).update(
            census.joint_indices()
        )
        assert np.array_equal(by_records.counts, by_joint.counts)

    def test_subset_counts_match_dataset(self, census):
        acc = JointCountAccumulator(census.schema).update(census)
        for positions in [(0,), (2, 4), (5, 1), (0, 1, 3)]:
            assert np.array_equal(
                acc.subset_counts(positions), census.subset_counts(positions)
            )

    def test_merge(self, census):
        left = JointCountAccumulator(census.schema).update(census.records[:3_000])
        right = JointCountAccumulator(census.schema).update(census.records[3_000:])
        assert np.array_equal(left.merge(right).counts, census.joint_counts())
        assert left.n_records == census.n_records

    def test_out_of_range_rejected(self, census):
        acc = JointCountAccumulator(census.schema)
        with pytest.raises(DataError):
            acc.update_joint(np.array([census.schema.joint_size]))

    def test_fractions_empty_stream(self, census):
        acc = JointCountAccumulator(census.schema)
        assert acc.fractions().sum() == 0.0


# ----------------------------------------------------------------------
# executor determinism contract
# ----------------------------------------------------------------------
class TestPipelineDeterminism:
    @pytest.mark.parametrize("chunk_size", [100, 1_024, 7_777, 100_000])
    def test_workers1_bit_identical_to_one_shot(self, census, det_engine, chunk_size):
        pipeline = PerturbationPipeline(det_engine, chunk_size=chunk_size)
        assert pipeline.perturb(census, seed=42) == det_engine.perturb(census, seed=42)

    def test_workers1_bit_identical_for_ran_gd(self, census):
        engine = RandomizedGammaDiagonalPerturbation(
            census.schema, GAMMA, relative_alpha=0.5
        )
        pipeline = PerturbationPipeline(engine, chunk_size=900)
        assert pipeline.perturb(census, seed=3) == engine.perturb(census, seed=3)

    def test_workers1_bit_identical_for_sequential_sampler(self, survey_dataset):
        engine = GammaDiagonalPerturbation(
            survey_dataset.schema, 8.0, method="sequential"
        )
        small = CategoricalDataset(survey_dataset.schema, survey_dataset.records[:600])
        pipeline = PerturbationPipeline(engine, chunk_size=250)
        assert pipeline.perturb(small, seed=5) == engine.perturb(small, seed=5)

    def test_workers1_bit_identical_for_dense_sampler(self, tiny_dataset):
        dense = GammaDiagonalMatrix(tiny_dataset.schema.joint_size, 5.0).to_dense()
        engine = MatrixPerturbation(tiny_dataset.schema, dense)
        pipeline = PerturbationPipeline(engine, chunk_size=3)
        assert pipeline.perturb(tiny_dataset, seed=6) == engine.perturb(
            tiny_dataset, seed=6
        )

    @pytest.mark.parametrize("chunk_size", [512, 2_048, 100_000])
    def test_accumulated_counts_invariant_to_chunk_size(
        self, census, det_engine, chunk_size
    ):
        reference = det_engine.perturb(census, seed=42).joint_counts()
        pipeline = PerturbationPipeline(det_engine, chunk_size=chunk_size)
        acc = pipeline.accumulate(census, seed=42)
        assert acc.n_records == census.n_records
        assert np.array_equal(acc.counts, reference)

    def test_spawn_totals_invariant_across_worker_counts(self, census, det_engine):
        counts = [
            PerturbationPipeline(
                det_engine, chunk_size=2_048, workers=workers, seeding="spawn"
            )
            .accumulate(census, seed=5)
            .counts
            for workers in (1, 2, 3)
        ]
        assert np.array_equal(counts[0], counts[1])
        assert np.array_equal(counts[1], counts[2])

    def test_spawn_perturb_invariant_across_worker_counts(self, census, det_engine):
        serial = PerturbationPipeline(
            det_engine, chunk_size=2_048, workers=1, seeding="spawn"
        ).perturb(census, seed=5)
        pooled = PerturbationPipeline(
            det_engine, chunk_size=2_048, workers=2
        ).perturb(census, seed=5)
        assert serial == pooled

    def test_spawn_reproducible_for_same_seed(self, census, det_engine):
        pipeline = PerturbationPipeline(det_engine, chunk_size=2_048, workers=2)
        assert pipeline.perturb(census, seed=5) == pipeline.perturb(census, seed=5)

    def test_perturb_stream_is_chunked(self, census, det_engine):
        pipeline = PerturbationPipeline(det_engine, chunk_size=3_000)
        sizes = [c.shape[0] for c in pipeline.perturb_stream(census, seed=1)]
        assert sizes == [3_000, 3_000, 2_000]

    def test_empty_dataset(self, det_engine, census):
        empty = CategoricalDataset(census.schema, census.records[:0])
        pipeline = PerturbationPipeline(det_engine, chunk_size=100)
        assert pipeline.perturb(empty, seed=0).n_records == 0
        assert pipeline.accumulate(empty, seed=0).n_records == 0

    def test_invalid_configuration_rejected(self, det_engine, census):
        with pytest.raises(ExperimentError):
            PerturbationPipeline(det_engine, chunk_size=0)
        with pytest.raises(ExperimentError):
            PerturbationPipeline(det_engine, workers=0)
        with pytest.raises(ExperimentError):
            PerturbationPipeline(det_engine, seeding="nope")
        with pytest.raises(ExperimentError):
            PerturbationPipeline(det_engine, workers=2, seeding="sequential")
        with pytest.raises(ExperimentError):
            PerturbationPipeline(object())

    def test_schema_mismatch_rejected(self, det_engine, tiny_dataset):
        pipeline = PerturbationPipeline(det_engine)
        with pytest.raises(DataError):
            pipeline.perturb(tiny_dataset, seed=0)


# ----------------------------------------------------------------------
# streaming reconstruction + mining
# ----------------------------------------------------------------------
class TestStreamingFrontEnd:
    def test_estimator_matches_dataset_backed(self, census, det_engine):
        perturbed = det_engine.perturb(census, seed=9)
        acc = JointCountAccumulator(census.schema).update(perturbed)
        streaming = AccumulatedSupportEstimator(acc, GAMMA)
        direct = GammaDiagonalSupportEstimator(perturbed, GAMMA)
        items = all_items(census.schema)
        assert np.allclose(
            streaming.supports(items), direct.supports(items), atol=1e-12
        )

    def test_estimator_rejects_empty_stream(self, census):
        acc = JointCountAccumulator(census.schema)
        with pytest.raises(MiningError):
            AccumulatedSupportEstimator(acc, GAMMA).supports(
                all_items(census.schema)
            )

    def test_reconstruct_stream_matches_direct_solver(self, census):
        """The front-end is exactly Eq. 8 applied to the accumulated Y."""
        from repro.core.reconstruction import reconstruct_counts

        acc = JointCountAccumulator(census.schema)
        acc.update(
            GammaDiagonalPerturbation(census.schema, GAMMA).perturb(census, seed=1)
        )
        estimate = reconstruct_stream(acc, GAMMA)
        matrix = GammaDiagonalMatrix(census.schema.joint_size, GAMMA)
        assert np.allclose(estimate, reconstruct_counts(matrix, acc.counts))
        # The closed form preserves total mass and inverts exactly:
        assert estimate.sum() == pytest.approx(census.n_records)
        assert np.allclose(matrix.matvec(estimate), acc.counts)
        clipped = reconstruct_stream(acc, GAMMA, clip=True)
        assert (clipped >= 0).all()

    def test_reconstruct_stream_em_is_nonnegative(self, census):
        acc = JointCountAccumulator(census.schema)
        acc.update(
            GammaDiagonalPerturbation(census.schema, GAMMA).perturb(census, seed=1)
        )
        estimate = reconstruct_stream(acc, GAMMA, method="em")
        assert (estimate >= 0).all()
        assert estimate.sum() == pytest.approx(census.n_records)

    def test_mine_stream_equals_one_shot_mining(self, census, det_engine):
        """workers=1 streaming preserves the one-shot mining result."""
        miner = DetGDMiner(census.schema, GAMMA)
        one_shot = miner.mine(census, 0.02, seed=4)
        streamed = mine_stream(
            census.iter_chunks(1_500),
            census.schema,
            GAMMA,
            0.02,
            chunk_size=1_500,
            seed=4,
        )
        assert one_shot.by_length.keys() == streamed.by_length.keys()
        for length, level in one_shot.by_length.items():
            assert level.keys() == streamed.by_length[length].keys()
            for itemset, support in level.items():
                assert streamed.by_length[length][itemset] == pytest.approx(support)

    def test_mine_stream_multiworker_runs(self, census):
        result = mine_stream(
            census, census.schema, GAMMA, 0.05, chunk_size=2_048, workers=2, seed=4
        )
        assert 1 in result.by_length

    def test_stream_perturbed_counts_convenience(self, census, det_engine):
        acc = stream_perturbed_counts(census, det_engine, chunk_size=1_024, seed=42)
        assert np.array_equal(
            acc.counts, det_engine.perturb(census, seed=42).joint_counts()
        )


# ----------------------------------------------------------------------
# miner / experiment integration
# ----------------------------------------------------------------------
class TestMinerIntegration:
    def test_chunked_miner_matches_direct_miner(self, census):
        miner = DetGDMiner(census.schema, GAMMA)
        direct = miner.mine(census, 0.02, seed=8)
        chunked = miner.mine(census, 0.02, seed=8, chunk_size=1_000)
        assert direct.by_length.keys() == chunked.by_length.keys()
        for length, level in direct.by_length.items():
            assert level.keys() == chunked.by_length[length].keys()

    def test_run_mechanism_with_pipeline_config(self, census):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_mechanism

        config = ExperimentConfig(workers=2, chunk_size=2_048, n_records=None)
        run = run_mechanism(census, "DET-GD", config)
        assert run.mechanism == "DET-GD"
        assert run.errors is not None

    def test_config_validates_pipeline_knobs(self):
        from repro.exceptions import ExperimentError
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ExperimentError):
            ExperimentConfig(workers=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(chunk_size=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(backend="parquet")
        with pytest.raises(ExperimentError):
            ExperimentConfig(dispatch="carrier-pigeon")


# ----------------------------------------------------------------------
# zero-copy dispatch (shm / memmap)
# ----------------------------------------------------------------------
class TestShmDispatch:
    """``dispatch="shm"`` must be a pure transport change: same chunk
    boundaries, same spawned streams, bit-identical outputs."""

    @pytest.fixture(scope="class")
    def spawn_counts(self, census, det_engine):
        """Reference: workers=1 spawn-seeded counts at chunk 2_048."""
        pipeline = PerturbationPipeline(
            det_engine, chunk_size=2_048, workers=1, seeding="spawn"
        )
        return pipeline.accumulate(census, seed=5).counts

    @pytest.mark.parametrize("workers", [2, 3])
    def test_shm_counts_bit_identical(self, census, det_engine, spawn_counts, workers):
        pipeline = PerturbationPipeline(
            det_engine, chunk_size=2_048, workers=workers, dispatch="shm"
        )
        assert np.array_equal(pipeline.accumulate(census, seed=5).counts, spawn_counts)

    def test_shm_matches_pickle_dispatch(self, census, det_engine):
        shm = PerturbationPipeline(
            det_engine, chunk_size=2_048, workers=2, dispatch="shm"
        )
        pickled = PerturbationPipeline(det_engine, chunk_size=2_048, workers=2)
        assert np.array_equal(
            shm.accumulate(census, seed=5).counts,
            pickled.accumulate(census, seed=5).counts,
        )

    def test_shm_perturb_records_identical(self, census, det_engine):
        shm = PerturbationPipeline(
            det_engine, chunk_size=2_048, workers=2, dispatch="shm"
        )
        pickled = PerturbationPipeline(det_engine, chunk_size=2_048, workers=2)
        assert shm.perturb(census, seed=5) == pickled.perturb(census, seed=5)

    def test_shm_bitmaps_identical(self, census, det_engine):
        shm = PerturbationPipeline(
            det_engine, chunk_size=2_048, workers=2, dispatch="shm"
        )
        pickled = PerturbationPipeline(det_engine, chunk_size=2_048, workers=2)
        assert np.array_equal(
            shm.accumulate_bitmaps(census, seed=5).bitmaps.words,
            pickled.accumulate_bitmaps(census, seed=5).bitmaps.words,
        )

    def test_shm_accepts_raw_record_arrays(self, census, det_engine, spawn_counts):
        pipeline = PerturbationPipeline(
            det_engine, chunk_size=2_048, workers=2, dispatch="shm"
        )
        counts = pipeline.accumulate(census.records, seed=5).counts
        assert np.array_equal(counts, spawn_counts)

    def test_shm_rejects_unsized_iterables(self, census, det_engine):
        pipeline = PerturbationPipeline(
            det_engine, chunk_size=2_048, workers=2, dispatch="shm"
        )
        with pytest.raises(ExperimentError):
            pipeline.accumulate(iter([census.records]), seed=5)

    def test_invalid_dispatch_rejected(self, det_engine):
        with pytest.raises(ExperimentError):
            PerturbationPipeline(det_engine, dispatch="smoke-signals")

    def test_workers1_shm_equals_one_shot(self, census, det_engine):
        """With one worker dispatch is moot; the sequential guarantee
        (bit-identical to ``engine.perturb``) must survive."""
        pipeline = PerturbationPipeline(det_engine, chunk_size=2_048, dispatch="shm")
        assert pipeline.perturb(census, seed=5) == det_engine.perturb(census, seed=5)


class TestMemmapSource:
    @pytest.fixture(scope="class")
    def frd_path(self, census, tmp_path_factory):
        from repro.data.io import save_frd

        path = tmp_path_factory.mktemp("pipeline-frd") / "census.frd"
        save_frd(census, path)
        return path

    def test_memmap_counts_equal_in_ram(self, census, det_engine, frd_path):
        from repro.data.io import open_frd

        for workers, dispatch in [(1, "pickle"), (2, "pickle"), (2, "shm")]:
            seeding = "spawn" if workers == 1 else "auto"
            in_ram = PerturbationPipeline(
                det_engine,
                chunk_size=2_048,
                workers=workers,
                seeding=seeding,
                dispatch=dispatch,
            ).accumulate(census, seed=5)
            mapped = PerturbationPipeline(
                det_engine,
                chunk_size=2_048,
                workers=workers,
                seeding=seeding,
                dispatch=dispatch,
            ).accumulate(open_frd(frd_path), seed=5)
            assert np.array_equal(in_ram.counts, mapped.counts)

    def test_memmap_sequential_equals_one_shot(self, census, det_engine, frd_path):
        from repro.data.io import open_frd

        counts = (
            PerturbationPipeline(det_engine, chunk_size=2_048)
            .accumulate(open_frd(frd_path), seed=5)
            .counts
        )
        assert np.array_equal(
            counts, det_engine.perturb(census, seed=5).joint_counts()
        )

    def test_mine_stream_over_memmap(self, census, frd_path):
        from repro.data.io import open_frd

        direct = mine_stream(
            census, census.schema, GAMMA, 0.02, chunk_size=2_048, seed=8
        )
        mapped = mine_stream(
            open_frd(frd_path), census.schema, GAMMA, 0.02, chunk_size=2_048, seed=8
        )
        assert direct.by_length.keys() == mapped.by_length.keys()
        for length, level in direct.by_length.items():
            assert level == mapped.by_length[length]


# ----------------------------------------------------------------------
# stream fast-forward (skip_records)
# ----------------------------------------------------------------------
class TestSkipRecords:
    """Resuming a stream behind ``k`` records is invisible in the bits.

    The service relies on this after crash recovery: a restarted
    collection fast-forwards its perturbation stream past the spool's
    durable record count, and every later batch must come out exactly
    as it would have from the original uninterrupted stream.
    """

    @given(
        split=st.integers(min_value=0, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_skip_draw_split_is_bit_identical(self, split, seed):
        from repro.pipeline.batch import SequentialPerturbStream

        data = generate_census(300, seed=23)
        engine = GammaDiagonalPerturbation(data.schema, GAMMA)
        straight = SequentialPerturbStream(engine, seed=seed)
        full = straight.perturb_batch(data.records)
        resumed = SequentialPerturbStream(engine, seed=seed)
        resumed.skip_records(split)
        assert resumed.n_records == split
        tail = resumed.perturb_batch(data.records[split:])
        assert np.array_equal(tail, full[split:])
        assert resumed.n_records == straight.n_records == 300

    def test_skip_splits_compose(self):
        from repro.pipeline.batch import SequentialPerturbStream

        data = generate_census(120, seed=3)
        engine = GammaDiagonalPerturbation(data.schema, GAMMA)
        full = SequentialPerturbStream(engine, seed=5).perturb_batch(data.records)
        twice = SequentialPerturbStream(engine, seed=5)
        twice.skip_records(40)
        twice.skip_records(30)  # two skips == one skip of the sum
        assert np.array_equal(
            twice.perturb_batch(data.records[70:]), full[70:]
        )

    def test_negative_skip_rejected(self):
        from repro.pipeline.batch import SequentialPerturbStream

        engine = GammaDiagonalPerturbation(generate_census(10, seed=1).schema, GAMMA)
        with pytest.raises(ExperimentError):
            SequentialPerturbStream(engine, seed=1).skip_records(-1)

    def test_engine_without_uniform_width_rejected(self):
        from repro.pipeline.batch import SequentialPerturbStream

        class Opaque:
            schema = generate_census(10, seed=1).schema

            def perturb_chunk(self, records, uniforms):
                return records

        with pytest.raises(ExperimentError):
            SequentialPerturbStream(Opaque(), seed=1).skip_records(5)
