"""Tests for repro.core.matrix (dense perturbation matrices)."""

import numpy as np
import pytest

from repro.core.matrix import DensePerturbationMatrix
from repro.exceptions import MatrixError


@pytest.fixture
def warner_like():
    return DensePerturbationMatrix([[0.7, 0.3], [0.3, 0.7]])


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(MatrixError):
            DensePerturbationMatrix(np.ones((2, 3)) / 2.0)

    def test_rejects_bad_column_sums(self):
        with pytest.raises(MatrixError) as err:
            DensePerturbationMatrix([[0.5, 0.5], [0.4, 0.5]])
        assert "Markov" in str(err.value)

    def test_rejects_negative_entries(self):
        with pytest.raises(MatrixError):
            DensePerturbationMatrix([[1.1, 0.0], [-0.1, 1.0]])

    def test_accepts_identity(self):
        matrix = DensePerturbationMatrix(np.eye(3))
        assert matrix.n == 3

    def test_input_copied_and_frozen(self):
        source = np.array([[0.7, 0.3], [0.3, 0.7]])
        matrix = DensePerturbationMatrix(source)
        source[0, 0] = 0.0
        assert matrix.to_dense()[0, 0] == pytest.approx(0.7)
        with pytest.raises(ValueError):
            matrix.to_dense()[0, 0] = 1.0


class TestOperations:
    def test_matvec(self, warner_like):
        result = warner_like.matvec(np.array([10.0, 0.0]))
        assert result == pytest.approx([7.0, 3.0])

    def test_solve_roundtrip(self, warner_like):
        x = np.array([3.0, 7.0])
        assert warner_like.solve(warner_like.matvec(x)) == pytest.approx(list(x))

    def test_solve_singular(self):
        singular = DensePerturbationMatrix(np.full((2, 2), 0.5))
        with pytest.raises(MatrixError):
            singular.solve(np.ones(2))

    def test_condition_number(self, warner_like):
        # Eigenvalues 1 and 0.4.
        assert warner_like.condition_number() == pytest.approx(2.5)

    def test_amplification(self, warner_like):
        assert warner_like.amplification() == pytest.approx(7.0 / 3.0)

    def test_shape_validation(self, warner_like):
        with pytest.raises(MatrixError):
            warner_like.matvec(np.ones(3))
        with pytest.raises(MatrixError):
            warner_like.solve(np.ones(3))
