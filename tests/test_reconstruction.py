"""Tests for repro.core.reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gamma_diagonal import GammaDiagonalMatrix
from repro.core.reconstruction import (
    clip_counts,
    em_reconstruct,
    reconstruct_counts,
    reconstruction_matrix_for,
)
from repro.exceptions import ReconstructionError, SolverDivergedError


@pytest.fixture
def warner_matrix():
    return np.array([[0.7, 0.3], [0.3, 0.7]])


class TestLinearMethods:
    def test_solve_exact_on_expected_counts(self, warner_matrix):
        x = np.array([300.0, 700.0])
        y = warner_matrix @ x
        assert reconstruct_counts(warner_matrix, y) == pytest.approx(list(x))

    def test_lstsq_matches_solve_for_invertible(self, warner_matrix, rng):
        y = rng.uniform(10, 100, size=2)
        solve = reconstruct_counts(warner_matrix, y, method="solve")
        lstsq = reconstruct_counts(warner_matrix, y, method="lstsq")
        assert np.allclose(solve, lstsq)

    def test_solve_uses_closed_form_objects(self):
        matrix = GammaDiagonalMatrix(n=50, gamma=9.0)
        x = np.arange(50, dtype=float)
        y = matrix.matvec(x)
        assert np.allclose(reconstruct_counts(matrix, y), x, atol=1e-8)

    def test_unknown_method(self, warner_matrix):
        with pytest.raises(ReconstructionError):
            reconstruct_counts(warner_matrix, np.ones(2), method="nope")

    def test_non_1d_observed(self, warner_matrix):
        with pytest.raises(ReconstructionError):
            reconstruct_counts(warner_matrix, np.ones((2, 2)))

    def test_singular_solve_raises(self):
        with pytest.raises(ReconstructionError):
            reconstruct_counts(np.full((2, 2), 0.5), np.ones(2))

    def test_lstsq_survives_singular(self):
        result = reconstruct_counts(np.full((2, 2), 0.5), np.ones(2), method="lstsq")
        assert np.all(np.isfinite(result))

    def test_bad_matrix_type(self):
        with pytest.raises(ReconstructionError):
            reconstruct_counts("not a matrix", np.ones(2))


class TestEM:
    def test_recovers_distribution(self, warner_matrix):
        x = np.array([250.0, 750.0])
        y = warner_matrix @ x
        estimate = em_reconstruct(warner_matrix, y)
        assert estimate == pytest.approx(list(x), rel=1e-4)

    def test_always_non_negative(self, warner_matrix):
        # Linear reconstruction would go negative on this input.
        y = np.array([95.0, 5.0])
        linear = reconstruct_counts(warner_matrix, y)
        assert linear.min() < 0
        em = reconstruct_counts(warner_matrix, y, method="em")
        assert em.min() >= 0

    def test_preserves_total_mass(self, warner_matrix, rng):
        y = rng.uniform(1, 50, size=2)
        em = em_reconstruct(warner_matrix, y)
        assert em.sum() == pytest.approx(y.sum())

    def test_zero_observation(self, warner_matrix):
        assert np.all(em_reconstruct(warner_matrix, np.zeros(2)) == 0)

    def test_negative_observation_rejected(self, warner_matrix):
        with pytest.raises(ReconstructionError):
            em_reconstruct(warner_matrix, np.array([-1.0, 2.0]))

    def test_non_square_rejected(self):
        with pytest.raises(ReconstructionError):
            em_reconstruct(np.ones((2, 3)), np.ones(2))

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20)
    def test_em_close_to_linear_on_consistent_data(self, seed):
        """On exactly-consistent observations with an interior solution,
        EM and the exact inverse agree."""
        rng = np.random.default_rng(seed)
        matrix = GammaDiagonalMatrix(n=5, gamma=10.0).to_dense()
        x = rng.uniform(10, 100, size=5)
        y = matrix @ x
        em = em_reconstruct(matrix, y, n_iterations=5000, tol=1e-14)
        assert np.allclose(em, x, rtol=1e-3)


class TestEMSolverLane:
    """``target_residual`` mode: early return on success, typed stall."""

    def test_target_reached_returns_early(self, warner_matrix):
        x = np.array([300.0, 700.0])
        y = warner_matrix @ x
        estimate = em_reconstruct(warner_matrix, y, target_residual=1e-3)
        residual = np.linalg.norm(warner_matrix @ estimate - y) / np.linalg.norm(y)
        assert residual <= 1e-3
        assert estimate.sum() == pytest.approx(y.sum())

    def test_stall_raises_typed_error_with_fallback_estimate(self):
        # Rank-1 system, inconsistent observation: A p is [0.5, 0.5]
        # for every distribution p, so the residual never moves and the
        # lane must report divergence instead of looping to the cap.
        matrix = np.full((2, 2), 0.5)
        y = np.array([95.0, 5.0])
        with pytest.raises(SolverDivergedError) as excinfo:
            em_reconstruct(matrix, y, target_residual=1e-6)
        error = excinfo.value
        assert error.residual > 1e-6
        assert error.iterations >= 1
        # The carried estimate is a usable degraded fallback.
        assert np.all(error.estimate >= 0)
        assert error.estimate.sum() == pytest.approx(y.sum())

    def test_iteration_cap_above_target_raises(self, warner_matrix):
        x = np.array([250.0, 750.0])
        y = warner_matrix @ x
        with pytest.raises(SolverDivergedError) as excinfo:
            em_reconstruct(
                warner_matrix, y, n_iterations=2, target_residual=1e-12
            )
        assert excinfo.value.iterations <= 2

    def test_stall_patience_bounds_the_wasted_iterations(self):
        # Heavy uniform mixing makes EM creep: the residual falls by
        # well under 1% per iteration, so the stall counter -- not tol
        # convergence or the iteration cap -- ends the run, after
        # exactly ``patience`` unproductive iterations.
        eps = 0.02
        matrix = np.full((4, 4), (1.0 - eps) / 4.0) + eps * np.eye(4)
        y = matrix @ np.array([5.0, 10.0, 400.0, 85.0])
        with pytest.raises(SolverDivergedError) as impatient:
            em_reconstruct(matrix, y, target_residual=1e-8, stall_patience=1)
        with pytest.raises(SolverDivergedError) as patient:
            em_reconstruct(matrix, y, target_residual=1e-8, stall_patience=40)
        assert "stalled" in str(impatient.value)
        assert impatient.value.iterations < patient.value.iterations
        # More patience bought a (slightly) better fallback estimate.
        assert patient.value.residual < impatient.value.residual

    def test_stall_patience_validated(self, warner_matrix):
        with pytest.raises(ReconstructionError):
            em_reconstruct(
                warner_matrix, np.ones(2), target_residual=1e-6, stall_patience=0
            )

    def test_no_target_keeps_the_historical_plateau_contract(self):
        # The exact system that stalls the solver lane: without a
        # target, plateauing at the constrained optimum is success.
        matrix = np.full((2, 2), 0.5)
        y = np.array([95.0, 5.0])
        estimate = em_reconstruct(matrix, y)
        assert np.all(estimate >= 0)
        assert estimate.sum() == pytest.approx(y.sum())


class TestClip:
    def test_clips_negatives(self):
        assert clip_counts(np.array([-1.0, 2.0])).tolist() == [0.0, 2.0]

    def test_renormalize_preserves_total(self):
        clipped = clip_counts(np.array([-10.0, 60.0, 50.0]), renormalize=True)
        assert clipped.sum() == pytest.approx(100.0)
        assert clipped[0] == 0.0

    def test_no_positive_mass(self):
        clipped = clip_counts(np.array([-1.0, -2.0]), renormalize=True)
        assert np.all(clipped == 0)


class TestReconstructionMatrixFor:
    def test_gamma_diagonal_stays_structured(self):
        matrix = GammaDiagonalMatrix(n=1000, gamma=19.0)
        structured = reconstruction_matrix_for(matrix)
        assert hasattr(structured, "solve")
        assert structured.n == 1000

    def test_dense_falls_through(self, warner_matrix):
        assert reconstruction_matrix_for(warner_matrix) is warner_matrix
