"""Driver-side fault-injection harness for crash-recovery tests.

The production side is :mod:`repro.faultpoints`: code under test calls
``reach(name)`` at named barriers, which is a no-op unless the process
runs with ``$REPRO_FAULTPOINTS`` pointing at a directory.  This module
is the other half -- the utilities a *test* uses to drive a victim
process into a barrier and do something unkind to it there:

* **kill-at-barrier** -- :func:`hold` a barrier, launch the victim
  with :func:`fault_env`, :func:`wait_reached`, then
  :func:`sigkill`.  The victim dies frozen at an exact interior point
  of a write sequence (mid-spool-append, mid-store-commit, mid-cell),
  with no sleeps and no races.
* **delayed solver** -- :func:`solver_delay_env` builds the
  ``$REPRO_SOLVER_DELAY`` spec that stalls chosen portfolio lanes, so
  tests can force any lane to finish last and prove the accepted
  estimate does not depend on timing.
* **poisoned claim** -- :func:`poison_claim` plants a torn/garbage
  claim file on a :class:`~repro.store.ClaimBoard` directory, the
  state a host crash-looping mid-acquire leaves behind.

Tests that SIGKILL processes are marked ``faultinject`` and run in
their own CI lane (see pyproject.toml and ci.yml).
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.faultpoints import FAULTPOINTS_ENV, _sanitise

#: Default seconds to wait for a victim to hit a barrier / to die.
DEFAULT_TIMEOUT = 30.0

_POLL = 0.01


def marker(root, name: str, kind: str) -> Path:
    """Path of barrier ``name``'s ``reached``/``hold`` marker file."""
    return Path(root) / f"{_sanitise(name)}.{kind}"


def fault_env(root, extra: dict | None = None) -> dict:
    """A full child-process environment with fault points enabled.

    Returns a *copy* of this process's environment plus
    ``$REPRO_FAULTPOINTS`` -- hand it to ``subprocess.Popen(env=...)``.
    ``extra`` entries (e.g. :func:`solver_delay_env`) are merged in.
    """
    env = dict(os.environ)
    env[FAULTPOINTS_ENV] = str(root)
    env.update(extra or {})
    return env


def hold(root, name: str) -> Path:
    """Freeze any process reaching barrier ``name`` until released."""
    Path(root).mkdir(parents=True, exist_ok=True)
    path = marker(root, name, "hold")
    path.touch()
    return path


def release(root, name: str) -> None:
    """Unfreeze barrier ``name`` (no-op if it was never held)."""
    marker(root, name, "hold").unlink(missing_ok=True)


def clear_reached(root, name: str) -> None:
    """Forget that barrier ``name`` was crossed (for multi-hit tests)."""
    marker(root, name, "reached").unlink(missing_ok=True)


def wait_reached(root, name: str, timeout: float = DEFAULT_TIMEOUT) -> None:
    """Block until some victim crosses barrier ``name``.

    Raises :class:`TimeoutError` -- never hangs a test run -- if no
    process reaches the barrier within ``timeout`` seconds.
    """
    deadline = time.monotonic() + timeout
    path = marker(root, name, "reached")
    while not path.exists():
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"no process reached fault barrier {name!r} within {timeout}s"
            )
        time.sleep(_POLL)


def sigkill(pid: int) -> None:
    """Deliver SIGKILL: the victim gets no chance to clean up."""
    os.kill(pid, signal.SIGKILL)


def wait_dead(pid: int, timeout: float = DEFAULT_TIMEOUT) -> None:
    """Wait until ``pid`` (a direct child) has been reaped."""
    deadline = time.monotonic() + timeout
    while time.monotonic() <= deadline:
        try:
            done, _ = os.waitpid(pid, os.WNOHANG)
        except ChildProcessError:
            return  # already reaped elsewhere
        if done == pid:
            return
        time.sleep(_POLL)
    raise TimeoutError(f"pid {pid} still alive {timeout}s after SIGKILL")


def kill_at(process, root, name: str, timeout: float = DEFAULT_TIMEOUT) -> None:
    """Wait for ``process`` to freeze at barrier ``name``, then SIGKILL it.

    ``process`` needs ``pid`` and ``wait()`` (``subprocess.Popen`` and
    ``multiprocessing.Process`` both qualify; the latter's ``join`` is
    picked up via ``wait = join``).  The barrier must have been
    :func:`hold`-ed *before* the process started, else it may run past.
    """
    wait_reached(root, name, timeout)
    sigkill(process.pid)
    waiter = getattr(process, "wait", None) or process.join
    waiter()


def poison_claim(claim_root, key: str, payload: bytes = b'{"key": "torn') -> Path:
    """Plant a corrupt claim file for ``key`` on a claim directory.

    The default payload is truncated JSON -- what a host killed between
    ``write`` and ``rename`` can leave on filesystems without atomic
    rename (or plain bit rot on shared storage).  A correct
    :class:`~repro.store.ClaimBoard` must treat it as reclaimable,
    never as a live claim.
    """
    path = Path(claim_root) / f"{key}.claim"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)
    return path


def solver_delay_env(**delays: float) -> dict:
    """``$REPRO_SOLVER_DELAY`` spec stalling the given portfolio lanes.

    ``solver_delay_env(closed=0.2)`` makes the closed lane finish last
    in every race; merge into :func:`fault_env`'s ``extra`` or set
    directly via ``monkeypatch.setenv``.
    """
    from repro.solvers import DELAY_ENV

    spec = ",".join(f"{lane}={seconds:g}" for lane, seconds in sorted(delays.items()))
    return {DELAY_ENV: spec}
