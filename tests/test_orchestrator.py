"""Tests for repro.experiments.orchestrator (cells, DAG runs, caching)."""

import math

import numpy as np
import pytest

from repro.data.census import generate_census
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import figure1, figure3_support_error
from repro.experiments.orchestrator import (
    Cell,
    DatasetSpec,
    Orchestrator,
    comparison_cells,
    decode_apriori,
    encode_apriori,
    exact_cell,
    int_seed,
    mechanism_cell,
    resolve_seed,
    spawn_seed,
)
from repro.experiments.runner import run_comparison
from repro.experiments.sweeps import classification_sweep, gamma_sweep
from repro.experiments.tables import table3
from repro.mining.reconstructing import mine_exact
from repro.stats.rng import spawn_generators
from repro.store import ResultStore

CONFIG = ExperimentConfig(seed=3, mechanisms=("DET-GD", "MASK"))
SPEC = DatasetSpec.from_name("CENSUS", n_records=4000)


def _series_equal(a, b):
    assert a.keys() == b.keys()
    for key in a:
        left, right = a[key], b[key]
        assert (math.isnan(left) and math.isnan(right)) or left == pytest.approx(
            right, rel=1e-9
        )


class TestDatasetSpec:
    def test_from_name_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        spec = DatasetSpec.from_name("CENSUS")
        assert spec.n_records == 5000 and spec.seed == 7001
        assert DatasetSpec.from_name("HEALTH").seed == 7002

    def test_explicit_records_ignore_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert DatasetSpec.from_name("CENSUS", n_records=1234).n_records == 1234

    def test_unknown_dataset(self):
        with pytest.raises(ExperimentError):
            DatasetSpec.from_name("MNIST")

    def test_build_matches_generator(self):
        spec = DatasetSpec.from_name("CENSUS", n_records=500)
        assert np.array_equal(spec.build().records, generate_census(500).records)


class TestSeedSpecs:
    def test_int_seed_roundtrip(self):
        assert resolve_seed(int_seed(7)) == 7

    def test_spawn_matches_spawn_generators(self):
        streams = spawn_generators(11, 3)
        for index in range(3):
            ours = resolve_seed(spawn_seed(11, index, 3))
            assert ours.integers(2**31) == streams[index].integers(2**31)

    def test_unknown_kind(self):
        with pytest.raises(ExperimentError):
            resolve_seed({"kind": "banana"})


class TestAprioriCodec:
    def test_roundtrip_exact(self):
        result = mine_exact(generate_census(3000, seed=2), 0.02)
        payload, arrays = encode_apriori(result)
        back = decode_apriori(payload, arrays)
        assert back.min_support == result.min_support
        assert back.by_length == result.by_length


class TestCellKeys:
    def test_key_changes_with_seed_and_config(self, tmp_path):
        orch = Orchestrator(store=None, fingerprint="fp")
        exact = exact_cell(SPEC, 0.02)
        base = mechanism_cell(SPEC, "DET-GD", CONFIG, int_seed(1), exact)
        other_seed = mechanism_cell(SPEC, "DET-GD", CONFIG, int_seed(2), exact)
        other_gamma = mechanism_cell(
            SPEC, "DET-GD", ExperimentConfig(seed=3, gamma=9.0), int_seed(1), exact
        )
        keys = {orch.key_for(c) for c in (base, other_seed, other_gamma)}
        assert len(keys) == 3

    def test_key_changes_with_fingerprint(self):
        cell = exact_cell(SPEC, 0.02)
        key_a = Orchestrator(fingerprint="a").key_for(cell)
        key_b = Orchestrator(fingerprint="b").key_for(cell)
        assert key_a != key_b

    def test_env_is_not_keyed(self):
        orch = Orchestrator(store=None, fingerprint="fp")
        bitmap = exact_cell(SPEC, 0.02, env={"count_backend": "bitmap"})
        loops = exact_cell(SPEC, 0.02, env={"count_backend": "loops"})
        assert orch.key_for(bitmap) == orch.key_for(loops)

    def test_backend_and_dispatch_are_result_invariant_env(self):
        """Cache-key sensitivity to ``backend``/``dispatch``: none.

        The storage backend and the dispatch mode are bit-identity
        transports (pinned by the pipeline/backing test suites), so
        flipping them must *reuse* cached results, not fragment the
        cache -- they ride in ``env`` and stay out of the key.
        """
        orch = Orchestrator(store=None, fingerprint="fp")
        exact = exact_cell(SPEC, 0.02)
        compact = mechanism_cell(
            SPEC,
            "DET-GD",
            ExperimentConfig(seed=3, backend="compact", dispatch="pickle"),
            int_seed(1),
            exact,
        )
        int64 = mechanism_cell(
            SPEC,
            "DET-GD",
            ExperimentConfig(seed=3, backend="int64", dispatch="shm"),
            int_seed(1),
            exact,
        )
        assert orch.key_for(compact) == orch.key_for(int64)
        # ...but the knobs do reach the execution environment.
        assert compact.env["backend"] == "compact"
        assert int64.env["backend"] == "int64"
        assert int64.env["dispatch"] == "shm"

    def test_mechanism_results_identical_across_backends(self, tmp_path):
        """The invariance the env placement relies on, end to end."""
        exact = exact_cell(SPEC, 0.02, env={"backend": "compact"})
        cell = mechanism_cell(
            SPEC, "DET-GD", ExperimentConfig(seed=3), int_seed(1), exact
        )
        by_backend = {}
        for backend in ("compact", "int64"):
            env = dict(cell.env, backend=backend)
            run = Cell(
                name=cell.name,
                func=cell.func,
                params=cell.params,
                deps=cell.deps,
                env=env,
            )
            results = Orchestrator(store=None).run([exact, run])
            by_backend[backend] = results[cell.name]
        _series_equal(by_backend["compact"]["rho"], by_backend["int64"]["rho"])

    def test_irrelevant_knobs_do_not_fragment_keys(self):
        orch = Orchestrator(store=None, fingerprint="fp")
        exact = exact_cell(SPEC, 0.02)
        # relative_alpha only matters for RAN-GD; max_cut only for C&P
        low = ExperimentConfig(seed=1, relative_alpha=0.2)
        high = ExperimentConfig(seed=1, relative_alpha=0.8)
        a = mechanism_cell(SPEC, "DET-GD", low, int_seed(1), exact)
        b = mechanism_cell(SPEC, "DET-GD", high, int_seed(1), exact)
        assert orch.key_for(a) == orch.key_for(b)

    def test_multiworker_pipeline_is_keyed(self):
        orch = Orchestrator(store=None, fingerprint="fp")
        exact = exact_cell(SPEC, 0.02)
        one_shot = mechanism_cell(SPEC, "DET-GD", CONFIG, int_seed(1), exact)
        serial_config = ExperimentConfig(
            seed=3, mechanisms=CONFIG.mechanisms, workers=1, chunk_size=1000
        )
        spawn_config = ExperimentConfig(
            seed=3, mechanisms=CONFIG.mechanisms, workers=2, chunk_size=1000
        )
        chunked_serial = mechanism_cell(
            SPEC, "DET-GD", serial_config, int_seed(1), exact
        )
        spawned = mechanism_cell(SPEC, "DET-GD", spawn_config, int_seed(1), exact)
        # workers=1 chunked output is bit-identical to one-shot: same key.
        assert orch.key_for(one_shot) == orch.key_for(chunked_serial)
        # spawn-seeded multi-worker output differs: distinct key.
        assert orch.key_for(one_shot) != orch.key_for(spawned)


class TestOrchestratorRuns:
    @pytest.fixture()
    def store(self, tmp_path):
        return ResultStore(tmp_path / "store")

    def test_cold_then_warm(self, store):
        _, cells = comparison_cells(SPEC, CONFIG)
        cold = Orchestrator(store=store)
        results = cold.run(cells)
        assert cold.stats.misses == len(cells)
        assert cold.stats.mechanism_runs == len(CONFIG.mechanisms)

        warm = Orchestrator(store=store)
        cached = warm.run(cells)
        assert warm.stats.hits == len(cells)
        assert warm.stats.misses == 0 and warm.stats.mechanism_runs == 0
        for cell in cells[1:]:
            _series_equal(results[cell.name]["rho"], cached[cell.name]["rho"])

    def test_matches_legacy_run_comparison(self, store):
        _, cells = comparison_cells(SPEC, CONFIG)
        results = Orchestrator(store=store).run(cells)
        legacy = run_comparison(SPEC.build(), CONFIG)
        for mechanism, cell in zip(CONFIG.mechanisms, cells[1:]):
            _series_equal(legacy[mechanism].errors.rho, results[cell.name]["rho"])
            _series_equal(
                legacy[mechanism].errors.sigma_minus,
                results[cell.name]["sigma_minus"],
            )

    def test_force_recomputes(self, store):
        cells = [exact_cell(SPEC, 0.02)]
        Orchestrator(store=store).run(cells)
        forced = Orchestrator(store=store, force=True)
        forced.run(cells)
        assert forced.stats.hits == 0 and forced.stats.misses == 1

    def test_no_store_always_computes(self):
        orch = Orchestrator(store=None)
        orch.run([exact_cell(SPEC, 0.02)])
        assert orch.stats.misses == 1

    def test_memo_serves_repeat_runs(self, store):
        orch = Orchestrator(store=store)
        cells = [exact_cell(SPEC, 0.02)]
        orch.run(cells)
        orch.run(cells)
        assert orch.stats.hits == 0 and orch.stats.misses == 1

    def test_corrupted_entry_recomputed(self, store):
        cells = [exact_cell(SPEC, 0.02)]
        first = Orchestrator(store=store)
        first.run(cells)
        key = first.key_for(cells[0])
        store._json_path(key).write_bytes(b"garbage")
        again = Orchestrator(store=store)
        again.run(cells)
        assert again.stats.misses == 1
        assert store.get(key) is not None

    def test_unknown_dep_and_cycle_detected(self, store):
        exact = exact_cell(SPEC, 0.02)
        dangling = mechanism_cell(SPEC, "DET-GD", CONFIG, int_seed(1), exact)
        with pytest.raises(ExperimentError):
            Orchestrator(store=store).run([dangling])
        loop = Cell(
            name="loop",
            func="exact",
            params={"dataset": SPEC.spec(), "min_support": 0.02},
            deps=("loop",),
        )
        with pytest.raises(ExperimentError):
            Orchestrator(store=store).run([loop])

    def test_multi_dep_cells_rejected(self, store):
        exact_a = exact_cell(SPEC, 0.02)
        exact_b = exact_cell(SPEC, 0.05)
        greedy = Cell(
            name="greedy",
            func="mechanism",
            params={"dataset": SPEC.spec()},
            deps=(exact_a.name, exact_b.name),
        )
        with pytest.raises(ExperimentError):
            Orchestrator(store=store).run([exact_a, exact_b, greedy])

    def test_conflicting_cell_names_rejected(self, store):
        params_a = {"dataset": SPEC.spec(), "min_support": 0.02}
        params_b = {"dataset": SPEC.spec(), "min_support": 0.05}
        a = Cell(name="x", func="exact", params=params_a)
        b = Cell(name="x", func="exact", params=params_b)
        with pytest.raises(ExperimentError):
            Orchestrator(store=store).run([a, b])

    def test_parallel_jobs_match_serial(self, store, tmp_path):
        _, cells = comparison_cells(SPEC, CONFIG)
        serial = Orchestrator(store=store).run(cells)
        parallel = Orchestrator(store=ResultStore(tmp_path / "p"), jobs=2).run(cells)
        for cell in cells[1:]:
            _series_equal(serial[cell.name]["rho"], parallel[cell.name]["rho"])

    def test_jobs_with_multiworker_cells(self, store):
        """A pool-run cell may itself fan out (nested perturbation pool)."""
        spec = DatasetSpec.from_name("CENSUS", n_records=2000)
        config = ExperimentConfig(
            seed=3, mechanisms=("DET-GD",), workers=2, chunk_size=500
        )
        _, cells = comparison_cells(spec, config)
        results = Orchestrator(store=store, jobs=2).run(cells)
        assert results[cells[1].name]["mechanism"] == "DET-GD"

    def test_nan_error_values_cache_cleanly(self, store):
        """NaN rho (the documented per-length gap) must roundtrip, not crash."""
        spec = DatasetSpec.from_name("CENSUS", n_records=1500)
        config = ExperimentConfig(seed=1, gamma=999.0, protocol="apriori")
        exact = exact_cell(spec, 0.02)
        cell = mechanism_cell(spec, "C&P", config, int_seed(1), exact)
        cold = Orchestrator(store=store).run([exact, cell])
        rho = cold[cell.name]["rho"]
        assert any(math.isnan(value) for value in rho.values()), (
            "repro setup should produce at least one per-length gap"
        )
        warm = Orchestrator(store=store)
        cached = warm.run([exact, cell])
        assert warm.stats.misses == 0
        _series_equal(rho, cached[cell.name]["rho"])

    def test_invalid_jobs(self):
        with pytest.raises(ExperimentError):
            Orchestrator(jobs=0)


class TestHighLevelIntegration:
    @pytest.fixture()
    def orchestrator(self, tmp_path):
        return Orchestrator(store=ResultStore(tmp_path / "store"))

    def test_figure1_parity(self, orchestrator):
        config = ExperimentConfig(seed=5, mechanisms=("DET-GD",))
        legacy = figure1(config, n_records=3000)
        cells = figure1(config, n_records=3000, orchestrator=orchestrator)
        assert legacy.keys() == cells.keys()
        for panel in legacy:
            _series_equal(legacy[panel]["DET-GD"], cells[panel]["DET-GD"])

    def test_figure3_parity(self, orchestrator):
        config = ExperimentConfig(seed=6)
        kwargs = dict(length=3, alphas=[0.0, 1.0], config=config, n_records=3000)
        legacy = figure3_support_error("CENSUS", **kwargs)
        cells = figure3_support_error("CENSUS", **kwargs, orchestrator=orchestrator)
        for series in legacy:
            _series_equal(legacy[series], cells[series])

    def test_table3_parity(self, orchestrator, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert table3(orchestrator=orchestrator) == table3()

    def test_gamma_sweep_parity(self, orchestrator):
        config = ExperimentConfig(seed=7)
        spec = DatasetSpec.from_name("CENSUS", n_records=3000)
        legacy = gamma_sweep(spec.build(), gammas=(9.0, 99.0), config=config, length=3)
        cells = gamma_sweep(
            spec, gammas=(9.0, 99.0), config=config, length=3, orchestrator=orchestrator
        )
        for series in legacy:
            _series_equal(legacy[series], cells[series])

    def test_gamma_sweep_needs_spec_with_orchestrator(self, orchestrator):
        with pytest.raises(ExperimentError):
            gamma_sweep(generate_census(1000), orchestrator=orchestrator)

    def test_classification_sweep_parity(self, orchestrator):
        train = DatasetSpec.from_name("HEALTH", n_records=4000)
        test = DatasetSpec.from_name("HEALTH", n_records=1500, seed=99)
        legacy = classification_sweep(train, test, "HEALTH", gammas=(19.0,), seed=8)
        cells = classification_sweep(
            train, test, "HEALTH", gammas=(19.0,), seed=8, orchestrator=orchestrator
        )
        assert legacy == cells

    def test_classification_sweep_needs_int_seed(self, orchestrator):
        train = DatasetSpec.from_name("HEALTH", n_records=2000)
        with pytest.raises(ExperimentError):
            classification_sweep(
                train,
                train,
                "HEALTH",
                gammas=(19.0,),
                seed=None,
                orchestrator=orchestrator,
            )


class TestMechanismSpecCells:
    """Cache-key canonicalisation of mechanism *specs* (registry era)."""

    #: Pre-registry cache keys of the paper line-up (CENSUS, N=5000,
    #: default config, spawn seeds, fingerprint "pinned-fingerprint"),
    #: captured on main before the Mechanism refactor.  The refactor
    #: must keep these byte-stable so warm caches survive it.
    PINNED_LEGACY_KEYS = {
        "exact:CENSUS:a064c974db": (
            "1d82ccd63ee77ca94b355db987ac2f041f9869f247d472a39935d36f1c62a54d"
        ),
        "mech:DET-GD:CENSUS:12fb021181": (
            "73140ba1a9b547cb22be4641995de4cda100423c028f4cfddc904ba41b74a864"
        ),
        "mech:RAN-GD:CENSUS:4e97d6bad9": (
            "8f138bd790a419c91ca240bd9c3e2c85b67e5b0ba77396e79c7b2b6e84c8ee1a"
        ),
        "mech:MASK:CENSUS:b1237d4eec": (
            "1a2e4de21b908fae90ff12f1fd69f16ea7c5e0ad1fd50b09ae68cd06b69a337a"
        ),
        "mech:C&P:CENSUS:49e7214254": (
            "149a48c6de1df39693878da7b940d5fc06b2c337d4ef0d9eb8e634036b27b353"
        ),
    }

    def _composite_spec(self, det_gamma=19.0, warner_p=0.9):
        from repro.mechanisms import MechanismSpec

        return MechanismSpec(
            "composite",
            {
                "parts": [
                    {
                        "name": "det-gd",
                        "n_attributes": 4,
                        "params": {"gamma": det_gamma},
                    },
                    {"name": "warner", "n_attributes": 1, "params": {"p": warner_p}},
                    {"name": "warner", "n_attributes": 1, "params": {"p": warner_p}},
                ]
            },
        )

    def test_legacy_paper_keys_pinned(self):
        """The four paper mechanisms' keys are unchanged by the registry
        refactor (warm caches keep hitting)."""
        from repro.store import cache_key

        spec = DatasetSpec.from_name("CENSUS", n_records=5000)
        _, cells = comparison_cells(spec, ExperimentConfig())
        observed = {
            cell.name: cache_key(cell.key_spec(), "pinned-fingerprint")
            for cell in cells
        }
        assert observed == self.PINNED_LEGACY_KEYS

    def test_spec_cell_keys_canonicalise_parameters(self):
        """A per-attribute gamma change inside a composite spec changes
        the cell key; an identical spec reproduces it."""
        orch = Orchestrator(store=None, fingerprint="fp")
        exact = exact_cell(SPEC, 0.02)
        base = mechanism_cell(
            SPEC, self._composite_spec(), CONFIG, int_seed(1), exact
        )
        same = mechanism_cell(
            SPEC, self._composite_spec(), CONFIG, int_seed(1), exact
        )
        tweaked = mechanism_cell(
            SPEC, self._composite_spec(det_gamma=9.0), CONFIG, int_seed(1), exact
        )
        assert orch.key_for(base) == orch.key_for(same)
        assert orch.key_for(base) != orch.key_for(tweaked)

    def test_spec_cell_key_ignores_config_gamma(self):
        """Spec mechanisms are self-describing: the config-level gamma
        (which does not reach them) stays out of their key."""
        orch = Orchestrator(store=None, fingerprint="fp")
        exact = exact_cell(SPEC, 0.02)
        spec = self._composite_spec()
        one = mechanism_cell(
            SPEC, spec, ExperimentConfig(seed=3, gamma=19.0), int_seed(1), exact
        )
        other = mechanism_cell(
            SPEC, spec, ExperimentConfig(seed=3, gamma=9.0), int_seed(1), exact
        )
        assert orch.key_for(one) == orch.key_for(other)

    def test_spec_cells_run_and_warm_hit(self, tmp_path):
        """A composite spec cell computes through the orchestrator and a
        second run is a pure store hit (zero mechanism runs)."""
        store = ResultStore(tmp_path / "store")
        spec = self._composite_spec()
        config = ExperimentConfig(seed=3, min_support=0.05)
        exact = exact_cell(SPEC, config.min_support)
        cell = mechanism_cell(SPEC, spec, config, int_seed(7), exact)
        cold = Orchestrator(store=store)
        results = cold.run([exact, cell])
        assert cold.stats.mechanism_runs == 1
        assert results[cell.name]["mechanism"] == "DET-GD+WARNER+WARNER"

        warm = Orchestrator(store=store)
        warm_results = warm.run([exact, cell])
        assert warm.stats.mechanism_runs == 0
        assert warm.stats.hits == 2
        assert warm_results[cell.name] == results[cell.name]
