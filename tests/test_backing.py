"""Tests for repro.data.backing: dtypes, record blocks, equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.backing import (
    ArrayRecordBlock,
    as_record_block,
    backend_dtype,
    column_dtypes,
    minimal_dtype,
    record_dtype,
    validate_dataset_backend,
)
from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError


class TestMinimalDtype:
    @pytest.mark.parametrize(
        "card,expected",
        [
            (2, np.uint8),
            (256, np.uint8),
            (257, np.uint16),
            (65_536, np.uint16),
            (65_537, np.uint32),
            (2**32, np.uint32),
        ],
    )
    def test_ladder(self, card, expected):
        assert minimal_dtype(card) == np.dtype(expected)

    def test_too_large_rejected(self):
        with pytest.raises(DataError):
            minimal_dtype(2**32 + 1)

    def test_invalid_cardinality_rejected(self):
        with pytest.raises(DataError):
            minimal_dtype(0)

    def test_column_and_record_dtypes(self, tiny_schema):
        assert column_dtypes(tiny_schema) == (np.dtype(np.uint8),) * 2
        assert record_dtype(tiny_schema) == np.dtype(np.uint8)

    def test_record_dtype_takes_widest(self):
        schema = Schema(
            [
                Attribute("small", ["a", "b"]),
                Attribute("wide", [str(i) for i in range(300)]),
            ]
        )
        assert column_dtypes(schema) == (np.dtype(np.uint8), np.dtype(np.uint16))
        assert record_dtype(schema) == np.dtype(np.uint16)

    def test_backend_dtype(self, tiny_schema):
        assert backend_dtype(tiny_schema, "compact") == np.dtype(np.uint8)
        assert backend_dtype(tiny_schema, "int64") == np.dtype(np.int64)
        with pytest.raises(DataError):
            backend_dtype(tiny_schema, "float32")

    def test_validate_backend(self):
        assert validate_dataset_backend("compact") == "compact"
        with pytest.raises(DataError):
            validate_dataset_backend("bogus")


class TestArrayRecordBlock:
    def test_slicing_is_zero_copy(self, tiny_dataset):
        block = ArrayRecordBlock(tiny_dataset.schema, tiny_dataset.records)
        view = block.records(2, 5)
        assert view.shape == (3, 2)
        assert np.shares_memory(view, tiny_dataset.records)
        assert block.n_records == tiny_dataset.n_records
        assert block.dtype == tiny_dataset.records.dtype

    def test_shape_validated(self, tiny_schema):
        with pytest.raises(DataError):
            ArrayRecordBlock(tiny_schema, np.zeros((4, 3), dtype=np.uint8))


class TestAsRecordBlock:
    def test_dataset_resolves(self, tiny_dataset):
        block = as_record_block(tiny_dataset, tiny_dataset.schema)
        assert block.n_records == tiny_dataset.n_records

    def test_schema_mismatch_rejected(self, tiny_dataset, survey_schema):
        with pytest.raises(DataError):
            as_record_block(tiny_dataset, survey_schema)

    def test_array_resolves(self, tiny_schema):
        block = as_record_block(np.zeros((5, 2), dtype=np.uint8), tiny_schema)
        assert block.n_records == 5

    def test_iterable_is_not_a_block(self, tiny_dataset):
        chunks = iter([tiny_dataset.records])
        assert as_record_block(chunks, tiny_dataset.schema) is None

    def test_frd_resolves(self, tiny_dataset, tmp_path):
        from repro.data.io import open_frd, save_frd

        path = tmp_path / "tiny.frd"
        save_frd(tiny_dataset, path)
        block = as_record_block(open_frd(path), tiny_dataset.schema)
        assert block.n_records == tiny_dataset.n_records
        assert np.array_equal(block.records(0, 3), tiny_dataset.records[:3])


# ----------------------------------------------------------------------
# dtype minimisation can never change a count (Hypothesis)
# ----------------------------------------------------------------------
@st.composite
def schema_and_records(draw):
    """A random small schema plus in-domain records."""
    cards = draw(st.lists(st.integers(2, 6), min_size=1, max_size=4))
    schema = Schema(
        Attribute(f"a{j}", [f"c{v}" for v in range(card)])
        for j, card in enumerate(cards)
    )
    n = draw(st.integers(0, 40))
    cells = [
        draw(st.lists(st.integers(0, card - 1), min_size=n, max_size=n))
        for card in cards
    ]
    records = np.array(cells, dtype=np.int64).T.reshape(n, len(cards))
    return schema, records


@given(schema_and_records())
@settings(max_examples=50, deadline=None)
def test_counts_identical_across_backings(case):
    """int64 vs compact backing: every count/marginal/encode agrees."""
    schema, records = case
    wide = CategoricalDataset(schema, records)
    compact = wide.with_backend("compact")
    assert wide == compact
    assert compact.records.dtype == record_dtype(schema)
    assert np.array_equal(wide.joint_indices(), compact.joint_indices())
    assert np.array_equal(wide.joint_counts(), compact.joint_counts())
    for j in range(schema.n_attributes):
        assert np.array_equal(wide.value_counts(j), compact.value_counts(j))
    if schema.n_attributes > 1:
        positions = [schema.n_attributes - 1, 0]
        assert np.array_equal(
            wide.subset_counts(positions), compact.subset_counts(positions)
        )
    assert np.array_equal(wide.to_boolean(), compact.to_boolean())


@given(schema_and_records(), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_perturbation_identical_across_backings(case, seed):
    """The DET-GD sampler draws identically over both backings."""
    from repro.core.engine import GammaDiagonalPerturbation

    schema, records = case
    engine = GammaDiagonalPerturbation(schema, gamma=4.0)
    wide = CategoricalDataset(schema, records)
    compact = wide.with_backend("compact")
    out_wide = engine.perturb(wide, seed=seed)
    out_compact = engine.perturb(compact, seed=seed)
    assert out_wide == out_compact
    assert out_compact.records.dtype == record_dtype(schema)
