"""Tests for repro.baselines.mask (MASK, Rizvi & Haritsa 2002)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mask import (
    MaskPerturbation,
    bit_matrix,
    full_record_probability,
    itemset_condition_number,
    itemset_matrix,
    mask_p_for_gamma,
)
from repro.data.census import census_schema
from repro.exceptions import DataError, MatrixError, PrivacyError
from repro.stats.linalg import condition_number, is_markov_matrix


class TestPrivacyParameter:
    def test_census_value_from_paper(self):
        """gamma=19, M=6 -> p = 0.5610 (paper Section 7)."""
        assert mask_p_for_gamma(19.0, 6) == pytest.approx(0.5610, abs=5e-4)

    def test_health_value_from_paper(self):
        """gamma=19, M=7 -> p = 0.5524 (paper Section 7)."""
        assert mask_p_for_gamma(19.0, 7) == pytest.approx(0.5524, abs=5e-4)

    @given(
        st.floats(min_value=1.1, max_value=100.0),
        st.integers(min_value=1, max_value=20),
    )
    def test_constraint_tight(self, gamma, m):
        """(p/(1-p))^(2M) equals gamma at the returned p."""
        p = mask_p_for_gamma(gamma, m)
        assert (p / (1.0 - p)) ** (2 * m) == pytest.approx(gamma, rel=1e-6)

    def test_validation(self):
        with pytest.raises(PrivacyError):
            mask_p_for_gamma(1.0, 6)
        with pytest.raises(MatrixError):
            mask_p_for_gamma(19.0, 0)

    def test_amplification_method(self):
        mask = MaskPerturbation.for_gamma(census_schema(), 19.0)
        assert mask.amplification() == pytest.approx(19.0, rel=1e-6)


class TestMatrices:
    def test_bit_matrix(self):
        assert np.allclose(bit_matrix(0.7), [[0.7, 0.3], [0.3, 0.7]])

    def test_bit_matrix_validation(self):
        with pytest.raises(MatrixError):
            bit_matrix(1.5)

    @given(
        st.floats(min_value=0.51, max_value=0.99),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40)
    def test_itemset_matrix_is_markov(self, p, k):
        assert is_markov_matrix(itemset_matrix(p, k))

    @given(
        st.floats(min_value=0.55, max_value=0.95),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40)
    def test_condition_number_formula_matches_svd(self, p, k):
        """(1/(2p-1))^k equals the SVD condition number of the tensor
        power -- the exponential growth of Fig. 4."""
        assert itemset_condition_number(p, k) == pytest.approx(
            condition_number(itemset_matrix(p, k)), rel=1e-6
        )

    def test_condition_number_at_half_is_infinite(self):
        assert itemset_condition_number(0.5, 3) == float("inf")

    def test_full_record_probability_eq11(self):
        assert full_record_probability(0.6, 3, 5) == pytest.approx(
            0.6**3 * 0.4**2
        )
        with pytest.raises(MatrixError):
            full_record_probability(0.6, 6, 5)

    def test_itemset_matrix_length_validation(self):
        with pytest.raises(MatrixError):
            itemset_matrix(0.6, 0)


class TestPerturbation:
    def test_output_shape(self, survey_schema, survey_dataset):
        mask = MaskPerturbation(survey_schema, p=0.9)
        bits = mask.perturb(survey_dataset, seed=0)
        assert bits.shape == (survey_dataset.n_records, survey_schema.n_boolean)
        assert set(np.unique(bits)) <= {0, 1}

    def test_p_one_is_identity(self, survey_schema, survey_dataset):
        mask = MaskPerturbation(survey_schema, p=1.0)
        assert np.array_equal(
            mask.perturb(survey_dataset, seed=0), survey_dataset.to_boolean()
        )

    def test_p_zero_flips_everything(self, survey_schema, survey_dataset):
        mask = MaskPerturbation(survey_schema, p=0.0)
        assert np.array_equal(
            mask.perturb(survey_dataset, seed=0), 1 - survey_dataset.to_boolean()
        )

    def test_flip_rate(self, survey_schema, survey_dataset):
        p = 0.8
        mask = MaskPerturbation(survey_schema, p=p)
        bits = mask.perturb(survey_dataset, seed=1)
        flipped = (bits != survey_dataset.to_boolean()).mean()
        assert flipped == pytest.approx(1.0 - p, abs=0.01)

    def test_schema_mismatch(self, survey_schema, tiny_dataset):
        with pytest.raises(DataError):
            MaskPerturbation(survey_schema, 0.9).perturb(tiny_dataset, seed=0)

    def test_perturb_boolean_generic(self, rng):
        mask = MaskPerturbation(census_schema(), p=0.7)
        bits = (rng.random((100, 10)) < 0.5).astype(np.int8)
        out = mask.perturb_boolean(bits, seed=2)
        assert out.shape == bits.shape

    def test_p_validation(self, survey_schema):
        with pytest.raises(MatrixError):
            MaskPerturbation(survey_schema, p=-0.1)


class TestSupportEstimation:
    def test_unbiased_on_large_sample(self, survey_schema, survey_dataset):
        """Estimated itemset support tracks the true support."""
        mask = MaskPerturbation(survey_schema, p=0.9)
        bits = mask.perturb(survey_dataset, seed=3)
        # Itemset {smokes=never, income=high}: boolean positions 0 and 6.
        positions = [0, 6]
        true_support = np.mean(
            (survey_dataset.column(0) == 0) & (survey_dataset.column(2) == 1)
        )
        estimate = mask.estimate_itemset_support(bits, positions)
        assert estimate == pytest.approx(true_support, abs=0.03)

    def test_pattern_counts_preserve_total(self, survey_schema, survey_dataset):
        mask = MaskPerturbation(survey_schema, p=0.8)
        bits = mask.perturb(survey_dataset, seed=4)
        counts = mask.estimate_pattern_counts(bits, [0, 2, 5])
        assert counts.sum() == pytest.approx(survey_dataset.n_records)

    def test_empty_database_rejected(self, survey_schema):
        mask = MaskPerturbation(survey_schema, p=0.8)
        with pytest.raises(DataError):
            mask.estimate_itemset_support(np.empty((0, 7)), [0])

    def test_too_many_positions_rejected(self, survey_schema):
        mask = MaskPerturbation(survey_schema, p=0.8)
        with pytest.raises(DataError):
            mask.estimate_pattern_counts(np.zeros((5, 30)), list(range(25)))

    def test_no_positions_rejected(self, survey_schema):
        mask = MaskPerturbation(survey_schema, p=0.8)
        with pytest.raises(DataError):
            mask.estimate_pattern_counts(np.zeros((5, 7)), [])
