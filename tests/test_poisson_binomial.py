"""Tests for repro.stats.poisson_binomial."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.exceptions import DataError
from repro.stats.poisson_binomial import PoissonBinomial, variance_reduction_vs_identical

probability_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=40
)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(DataError):
            PoissonBinomial([])

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError):
            PoissonBinomial([0.5, 1.2])
        with pytest.raises(DataError):
            PoissonBinomial([-0.1])

    def test_rejects_2d(self):
        with pytest.raises(DataError):
            PoissonBinomial([[0.5], [0.5]])


class TestMoments:
    def test_mean_is_sum(self):
        assert PoissonBinomial([0.1, 0.2, 0.3]).mean == pytest.approx(0.6)

    def test_variance_direct(self):
        pb = PoissonBinomial([0.5, 0.5])
        assert pb.variance == pytest.approx(0.5)

    @given(probability_vectors)
    def test_paper_eq25_equals_bernoulli_variance(self, probs):
        """Paper Eq. (25) is algebraically the Bernoulli-sum variance."""
        pb = PoissonBinomial(probs)
        assert pb.variance_paper_form() == pytest.approx(pb.variance, abs=1e-9)

    @given(probability_vectors)
    def test_variance_maximised_by_identical_trials(self, probs):
        """Feller's observation behind Section 4.2: spreading the p_i
        can only shrink the variance at fixed mean."""
        assert variance_reduction_vs_identical(probs) >= -1e-9

    def test_variance_reduction_zero_for_identical(self):
        assert variance_reduction_vs_identical([0.3] * 10) == pytest.approx(0.0)

    def test_variance_reduction_positive_for_spread(self):
        assert variance_reduction_vs_identical([0.1, 0.5]) > 0


class TestPmf:
    def test_matches_binomial_for_identical_trials(self):
        pb = PoissonBinomial([0.3] * 12)
        expected = scipy_stats.binom.pmf(np.arange(13), 12, 0.3)
        assert np.allclose(pb.pmf(), expected)

    def test_two_fair_coins(self):
        assert PoissonBinomial([0.5, 0.5]).pmf() == pytest.approx([0.25, 0.5, 0.25])

    @given(probability_vectors)
    @settings(max_examples=50)
    def test_pmf_is_distribution(self, probs):
        pmf = PoissonBinomial(probs).pmf()
        assert np.all(pmf >= -1e-12)
        assert pmf.sum() == pytest.approx(1.0)

    @given(probability_vectors)
    @settings(max_examples=50)
    def test_pmf_moments_match_closed_forms(self, probs):
        pb = PoissonBinomial(probs)
        pmf = pb.pmf()
        k = np.arange(pmf.size)
        assert (pmf * k).sum() == pytest.approx(pb.mean, abs=1e-8)
        assert (pmf * k**2).sum() - (pmf * k).sum() ** 2 == pytest.approx(
            pb.variance, abs=1e-8
        )

    def test_cdf_ends_at_one(self):
        cdf = PoissonBinomial([0.2, 0.7, 0.9]).cdf()
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_degenerate_all_certain(self):
        pmf = PoissonBinomial([1.0, 1.0, 1.0]).pmf()
        assert pmf[-1] == pytest.approx(1.0)

    def test_degenerate_all_impossible(self):
        pmf = PoissonBinomial([0.0, 0.0]).pmf()
        assert pmf[0] == pytest.approx(1.0)


class TestSampling:
    def test_sample_shape_and_range(self, rng):
        pb = PoissonBinomial([0.2, 0.8, 0.5])
        draws = pb.sample(200, rng)
        assert draws.shape == (200,)
        assert draws.min() >= 0 and draws.max() <= 3

    def test_sample_mean_close(self, rng):
        pb = PoissonBinomial([0.2, 0.8, 0.5])
        draws = pb.sample(20_000, rng)
        assert draws.mean() == pytest.approx(pb.mean, abs=0.05)

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ValueError):
            PoissonBinomial([0.5]).sample(-1, rng)
