"""Tests for repro.store (keys, fingerprint, ResultStore durability)."""

import json
import multiprocessing

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.store import (
    ResultStore,
    cache_key,
    canonical_json,
    code_fingerprint,
    default_store_root,
)


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuples_and_lists_coincide(self):
        assert canonical_json({"x": (1, 2)}) == canonical_json({"x": [1, 2]})

    def test_int_float_distinct(self):
        assert canonical_json({"g": 19}) != canonical_json({"g": 19.0})

    def test_rejects_unkeyable(self):
        with pytest.raises(ExperimentError):
            canonical_json({"x": object()})
        with pytest.raises(ExperimentError):
            canonical_json({"x": float("nan")})
        with pytest.raises(ExperimentError):
            canonical_json({1: "non-string key"})


class TestCacheKey:
    def test_stable_and_sensitive(self):
        base = {"mechanism": "DET-GD", "seed": 1, "gamma": 19.0}
        key = cache_key(base, "fp")
        assert key == cache_key(dict(reversed(list(base.items()))), "fp")
        assert key != cache_key(dict(base, seed=2), "fp")
        assert key != cache_key(dict(base, gamma=9.0), "fp")
        assert key != cache_key(base, "other-fingerprint")

    def test_key_shape(self):
        key = cache_key({"a": 1}, "fp")
        assert len(key) == 64 and set(key) <= set("0123456789abcdef")


class TestFingerprint:
    def test_deterministic(self):
        assert code_fingerprint() == code_fingerprint()

    def test_default_root_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cc"))
        assert default_store_root() == tmp_path / "cc"


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestResultStore:
    def test_roundtrip_payload_and_arrays(self, store):
        store.put(
            "k1",
            {"rho": {"1": 2.5}},
            arrays={"x": np.arange(4)},
            meta={"cell": "demo"},
        )
        payload, arrays = store.get("k1")
        assert payload == {"rho": {"1": 2.5}}
        assert np.array_equal(arrays["x"], np.arange(4))

    def test_missing_is_none(self, store):
        assert store.get("nope") is None
        assert "nope" not in store

    def test_truncated_json_is_a_miss(self, store):
        store.put("k1", {"v": 1})
        path = store._json_path("k1")
        path.write_bytes(path.read_bytes()[:20])
        assert store.get("k1") is None
        assert not path.exists(), "corrupt entry must be discarded"

    def test_tampered_payload_is_a_miss(self, store):
        store.put("k1", {"v": 1})
        record = json.loads(store._json_path("k1").read_bytes())
        record["payload"]["v"] = 2  # checksum no longer matches
        store._json_path("k1").write_text(json.dumps(record))
        assert store.get("k1") is None

    def test_corrupted_npz_is_a_miss(self, store):
        store.put("k1", {"v": 1}, arrays={"x": np.ones(3)})
        store._npz_path("k1").write_bytes(b"not an npz")
        assert store.get("k1") is None
        assert not store._json_path("k1").exists()

    def test_missing_npz_is_a_miss(self, store):
        store.put("k1", {"v": 1}, arrays={"x": np.ones(3)})
        store._npz_path("k1").unlink()
        assert store.get("k1") is None

    def test_recompute_after_corruption(self, store):
        store.put("k1", {"v": 1})
        store._json_path("k1").write_bytes(b"garbage")
        assert store.get("k1") is None
        store.put("k1", {"v": 1})
        assert store.get("k1")[0] == {"v": 1}

    def test_entries_and_manifest(self, store):
        store.put("aa1", {"v": 1}, meta={"cell": "one", "fingerprint": "fp"})
        store.put("bb2", {"v": 2}, meta={"cell": "two", "fingerprint": "fp"})
        entries = {entry.key: entry for entry in store.entries()}
        assert set(entries) == {"aa1", "bb2"}
        assert entries["aa1"].meta["cell"] == "one"
        assert entries["aa1"].size > 0
        manifest = store.read_manifest()
        assert set(manifest["entries"]) == {"aa1", "bb2"}

    def test_remove_by_prefix_and_clear(self, store):
        store.put("aa1", {"v": 1})
        store.put("aa2", {"v": 2})
        store.put("bb1", {"v": 3})
        assert store.remove("aa") == 2
        assert store.get("bb1") is not None
        with pytest.raises(ExperimentError):
            store.remove("")
        assert store.clear() == 1
        assert store.entries() == []

    def test_remove_prefix_is_literal_not_a_glob(self, store):
        store.put("aa1", {"v": 1})
        # glob metacharacters must neither crash nor over-match
        assert store.remove("*") == 0
        assert store.remove("[a]") == 0
        assert store.remove("?a") == 0
        assert store.get("aa1") is not None

    def test_gc_reclaims_stale_and_orphans(self, store):
        store.put("old", {"v": 1}, meta={"fingerprint": "stale"})
        store.put("new", {"v": 2}, meta={"fingerprint": "live"})
        # orphans from interrupted writes: committed-then-lost npz and
        # a temp file stranded by a hard kill mid-_atomic_write
        (store.objects_dir / "orphan.npz").write_bytes(b"x")
        (store.objects_dir / ".tmp-abc123").write_bytes(b"partial")
        removed = store.gc("live")
        assert removed == 3
        assert store.get("new") is not None
        assert store.get("old") is None
        assert not (store.objects_dir / "orphan.npz").exists()
        assert not (store.objects_dir / ".tmp-abc123").exists()

    def test_same_key_rewrite_is_idempotent(self, store):
        store.put("k", {"v": 1})
        store.put("k", {"v": 1})
        assert store.get("k")[0] == {"v": 1}
        assert len(store.entries()) == 1


def _writer(args):
    root, worker, count = args
    store = ResultStore(root)
    for i in range(count):
        key = f"w{worker}-{i}"
        store.put(
            key,
            {"worker": worker, "i": i},
            arrays={"x": np.full(8, worker)},
            meta={"cell": key, "fingerprint": "fp"},
        )
    return worker


class TestConcurrentWriters:
    def test_parallel_puts_do_not_clobber(self, tmp_path):
        """Racing writers: every entry readable, manifest stays valid."""
        root = tmp_path / "store"
        workers, per_worker = 4, 6
        with multiprocessing.Pool(workers) as pool:
            pool.map(_writer, [(str(root), w, per_worker) for w in range(workers)])
        store = ResultStore(root)
        keys = {f"w{w}-{i}" for w in range(workers) for i in range(per_worker)}
        assert {entry.key for entry in store.entries()} == keys
        for key in keys:
            payload, arrays = store.get(key)
            assert payload["i"] == int(key.split("-")[1])
            assert arrays["x"].shape == (8,)
        manifest = store.refresh_manifest()
        assert set(manifest["entries"]) == keys
        # the manifest file on disk parses and matches
        assert set(store.read_manifest()["entries"]) == keys
