"""Tests for repro.core.randomized (RAN-GD, paper Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.randomized import RandomizedGammaDiagonal
from repro.exceptions import PrivacyError

randomized_strategy = st.builds(
    RandomizedGammaDiagonal.from_relative_alpha,
    n=st.integers(min_value=2, max_value=100),
    gamma=st.floats(min_value=1.5, max_value=50.0),
    relative_alpha=st.floats(min_value=0.0, max_value=1.0),
)


class TestConstruction:
    def test_alpha_zero_is_deterministic(self):
        randomized = RandomizedGammaDiagonal(n=10, gamma=19.0, alpha=0.0)
        assert np.all(randomized.draw_r(100, seed=0) == 0.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(PrivacyError):
            RandomizedGammaDiagonal(n=10, gamma=19.0, alpha=-0.1)

    def test_infeasible_alpha_rejected(self):
        bound = RandomizedGammaDiagonal.max_alpha(10, 19.0)
        with pytest.raises(PrivacyError):
            RandomizedGammaDiagonal(n=10, gamma=19.0, alpha=bound * 1.1)

    def test_relative_alpha_bounds(self):
        with pytest.raises(PrivacyError):
            RandomizedGammaDiagonal.from_relative_alpha(10, 19.0, 1.2)
        with pytest.raises(PrivacyError):
            RandomizedGammaDiagonal.from_relative_alpha(10, 19.0, -0.1)

    def test_max_alpha_small_domain(self):
        """For small n the off-diagonal feasibility binds first."""
        ref_x = 1.0 / (19.0 + 1.0)
        assert RandomizedGammaDiagonal.max_alpha(2, 19.0) == pytest.approx(ref_x)

    def test_max_alpha_large_domain(self):
        """For large n the diagonal bound gamma*x binds."""
        n, gamma = 2000, 19.0
        x = 1.0 / (gamma + n - 1)
        assert RandomizedGammaDiagonal.max_alpha(n, gamma) == pytest.approx(gamma * x)


class TestRealizations:
    @given(randomized_strategy)
    @settings(max_examples=50)
    def test_realized_entries_are_probabilities(self, randomized):
        r = randomized.draw_r(500, seed=1)
        assert np.all(np.abs(r) <= randomized.alpha + 1e-12)
        diag = randomized.diagonal(r)
        off = randomized.off_diagonal(r)
        assert np.all(diag >= -1e-12)
        assert np.all(off >= -1e-12)
        # Columns still sum to one for every realisation.
        totals = diag + (randomized.n - 1) * off
        assert np.allclose(totals, 1.0)

    @given(randomized_strategy)
    @settings(max_examples=50)
    def test_keep_probability_consistent(self, randomized):
        r = randomized.draw_r(100, seed=2)
        q = randomized.keep_probability(r)
        n = randomized.n
        assert np.allclose(q + (1 - q) / n, randomized.diagonal(r), atol=1e-12)
        assert np.allclose((1 - q) / n, randomized.off_diagonal(r), atol=1e-12)

    def test_expectation_is_deterministic_matrix(self):
        randomized = RandomizedGammaDiagonal.from_relative_alpha(50, 19.0, 0.8)
        r = randomized.draw_r(200_000, seed=3)
        # Standard error of the mean is ~2.9e-4; allow 4 sigma.
        assert randomized.diagonal(r).mean() == pytest.approx(
            randomized.expected.diagonal, abs=1.2e-3
        )

    def test_draws_are_deterministic_with_seed(self):
        randomized = RandomizedGammaDiagonal.from_relative_alpha(50, 19.0, 0.5)
        assert np.array_equal(
            randomized.draw_r(10, seed=4), randomized.draw_r(10, seed=4)
        )


class TestPosteriorAnalysis:
    def test_paper_section41_range(self):
        """P(Q)=5%, gamma=19, alpha=gamma*x/2: range about [33%, 60%]
        around the deterministic 50% (paper's worked example)."""
        n = 2000  # CENSUS joint size; the range is n-independent
        randomized = RandomizedGammaDiagonal.from_relative_alpha(n, 19.0, 0.5)
        lo, mid, hi = randomized.posterior_range(0.05)
        assert mid == pytest.approx(0.50, abs=0.01)
        assert lo == pytest.approx(1 / 3, abs=0.02)
        assert hi == pytest.approx(0.60, abs=0.02)

    def test_determinable_breach_is_lower_end(self):
        randomized = RandomizedGammaDiagonal.from_relative_alpha(2000, 19.0, 0.5)
        assert randomized.determinable_breach(0.05) == pytest.approx(
            randomized.posterior_range(0.05)[0]
        )

    def test_zero_alpha_collapses_range(self):
        randomized = RandomizedGammaDiagonal(n=100, gamma=19.0, alpha=0.0)
        lo, mid, hi = randomized.posterior_range(0.05)
        assert lo == pytest.approx(mid) == pytest.approx(hi)

    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=50)
    def test_range_widens_with_alpha(self, rel_alpha, prior):
        n, gamma = 200, 19.0
        narrow = RandomizedGammaDiagonal.from_relative_alpha(n, gamma, rel_alpha / 2)
        wide = RandomizedGammaDiagonal.from_relative_alpha(n, gamma, rel_alpha)
        lo_n, _, hi_n = narrow.posterior_range(prior)
        lo_w, _, hi_w = wide.posterior_range(prior)
        assert lo_w <= lo_n + 1e-12
        assert hi_w >= hi_n - 1e-12

    def test_full_alpha_zeroes_determinable_breach(self):
        """At alpha = gamma*x the lower diagonal reaches 0: the miner
        cannot rule out posterior 0."""
        randomized = RandomizedGammaDiagonal.from_relative_alpha(2000, 19.0, 1.0)
        assert randomized.determinable_breach(0.05) == pytest.approx(0.0, abs=1e-9)
