"""Tests for repro.core.gamma_diagonal (the paper's Section 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gamma_diagonal import (
    GammaDiagonalMatrix,
    maximum_diagonal_entry,
    minimum_condition_number,
)
from repro.core.privacy import amplification, satisfies_amplification
from repro.exceptions import MatrixError, PrivacyError
from repro.stats.linalg import condition_number, is_markov_matrix, is_symmetric

gamma_matrices = st.builds(
    GammaDiagonalMatrix,
    n=st.integers(min_value=2, max_value=40),
    gamma=st.floats(min_value=1.05, max_value=100.0),
)


class TestConstruction:
    def test_paper_entries(self):
        """gamma=19, n=2000 (CENSUS): x = 1/2018."""
        matrix = GammaDiagonalMatrix(n=2000, gamma=19.0)
        assert matrix.x == pytest.approx(1.0 / 2018.0)
        assert matrix.diagonal == pytest.approx(19.0 / 2018.0)

    def test_gamma_must_exceed_one(self):
        with pytest.raises(PrivacyError):
            GammaDiagonalMatrix(n=4, gamma=1.0)

    def test_domain_size_at_least_two(self):
        with pytest.raises(MatrixError):
            GammaDiagonalMatrix(n=1, gamma=19.0)


class TestPaperProperties:
    @given(gamma_matrices)
    @settings(max_examples=60)
    def test_is_markov(self, matrix):
        """Satisfies paper Eq. (1)."""
        assert is_markov_matrix(matrix.to_dense())

    @given(gamma_matrices)
    @settings(max_examples=60)
    def test_is_symmetric_toeplitz(self, matrix):
        dense = matrix.to_dense()
        assert is_symmetric(dense)
        # Toeplitz: constant along diagonals.
        assert np.allclose(np.diag(dense, 1), dense[0, 1])

    @given(gamma_matrices)
    @settings(max_examples=60)
    def test_amplification_is_exactly_gamma(self, matrix):
        """The Eq.-2 privacy constraint holds with equality."""
        assert amplification(matrix.to_dense()) == pytest.approx(matrix.gamma)
        assert matrix.amplification() == pytest.approx(matrix.gamma)

    @given(gamma_matrices)
    @settings(max_examples=40)
    def test_condition_number_matches_dense(self, matrix):
        assert matrix.condition_number() == pytest.approx(
            condition_number(matrix.to_dense()), rel=1e-6
        )

    def test_condition_number_formula(self):
        """c = (gamma + n - 1)/(gamma - 1) = 1 + n/(gamma-1) (Fig. 4)."""
        matrix = GammaDiagonalMatrix(n=2000, gamma=19.0)
        assert matrix.condition_number() == pytest.approx(2018.0 / 18.0)
        assert matrix.condition_number() == pytest.approx(1 + 2000 / 18.0, rel=1e-3)

    @given(gamma_matrices)
    @settings(max_examples=60)
    def test_eigenvalues(self, matrix):
        """Markov eigenvalue 1 plus (gamma-1)x with multiplicity n-1."""
        lam1, lam2 = matrix.eigenvalues()
        assert lam1 == pytest.approx(1.0)
        assert lam2 == pytest.approx((matrix.gamma - 1.0) * matrix.x)

    @given(gamma_matrices)
    @settings(max_examples=40)
    def test_solve_matches_dense_solve(self, matrix):
        rhs = np.linspace(1.0, 2.0, matrix.n)
        expected = np.linalg.solve(matrix.to_dense(), rhs)
        assert np.allclose(matrix.solve(rhs), expected, atol=1e-8)

    @given(gamma_matrices)
    @settings(max_examples=40)
    def test_matvec_matches_dense(self, matrix):
        vec = np.linspace(-1.0, 1.0, matrix.n)
        assert np.allclose(matrix.matvec(vec), matrix.to_dense() @ vec)

    def test_large_domain_without_densifying(self):
        """Closed forms work at sizes where a dense matrix would be 1.8 TB."""
        matrix = GammaDiagonalMatrix(n=500_000, gamma=19.0)
        rhs = np.ones(matrix.n)
        solution = matrix.solve(rhs)
        assert np.allclose(matrix.matvec(solution), rhs, atol=1e-8)


class TestOptimality:
    """The paper's main theorem: minimal condition number under Eq. 2."""

    def test_gamma_diagonal_meets_bound(self):
        matrix = GammaDiagonalMatrix(n=10, gamma=19.0)
        assert matrix.condition_number() == pytest.approx(
            minimum_condition_number(10, 19.0)
        )

    def test_diagonal_meets_eq17_bound(self):
        matrix = GammaDiagonalMatrix(n=10, gamma=19.0)
        assert matrix.diagonal == pytest.approx(maximum_diagonal_entry(10, 19.0))

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=1.5, max_value=50.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60)
    def test_no_random_markov_matrix_beats_the_bound(self, n, gamma, seed):
        """Random symmetric Markov matrices satisfying the gamma
        constraint never have smaller condition number than Eq. 18."""
        rng = np.random.default_rng(seed)
        # Build a random symmetric Markov-ish matrix within the ratio
        # constraint, then project to column-stochastic symmetry by
        # averaging rounds of row/column normalisation (Sinkhorn).
        raw = rng.uniform(1.0, gamma, size=(n, n))
        raw = (raw + raw.T) / 2.0
        for _ in range(200):
            raw /= raw.sum(axis=0, keepdims=True)
            raw = (raw + raw.T) / 2.0
        if not satisfies_amplification(raw, gamma, rtol=1e-6):
            return  # Sinkhorn pushed it outside the constraint; skip.
        eigs = np.linalg.eigvalsh(raw)
        if eigs.min() <= 1e-9:
            return  # not positive definite; the theorem doesn't apply.
        cond = eigs.max() / eigs.min()
        assert cond >= minimum_condition_number(n, gamma) * (1 - 1e-6)

    def test_bound_validation(self):
        with pytest.raises(PrivacyError):
            minimum_condition_number(10, 1.0)
        with pytest.raises(MatrixError):
            minimum_condition_number(1, 19.0)
        with pytest.raises(PrivacyError):
            maximum_diagonal_entry(10, 0.5)
        with pytest.raises(MatrixError):
            maximum_diagonal_entry(1, 19.0)


class TestMixtureDecomposition:
    """Basis of the vectorized sampler: keep w.p. (gamma-1)x, else uniform."""

    @given(gamma_matrices)
    @settings(max_examples=60)
    def test_mixture_reproduces_entries(self, matrix):
        q = matrix.keep_probability
        n = matrix.n
        diag = q + (1.0 - q) / n
        off = (1.0 - q) / n
        assert diag == pytest.approx(matrix.diagonal)
        assert off == pytest.approx(matrix.off_diagonal)

    @given(gamma_matrices)
    def test_keep_probability_is_small_eigenvalue(self, matrix):
        assert matrix.keep_probability == pytest.approx(matrix.eigenvalues()[1])
