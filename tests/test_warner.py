"""Tests for repro.baselines.warner (randomized response anchor)."""

import numpy as np
import pytest

from repro.baselines.warner import WarnerRandomizedResponse
from repro.core.reconstruction import reconstruct_counts
from repro.exceptions import DataError, MatrixError


class TestConstruction:
    def test_gamma(self):
        assert WarnerRandomizedResponse(0.75).gamma == pytest.approx(3.0)

    def test_p_range(self):
        with pytest.raises(MatrixError):
            WarnerRandomizedResponse(0.5)
        with pytest.raises(MatrixError):
            WarnerRandomizedResponse(1.0)

    def test_gamma_diagonal_equivalence(self):
        """The Warner matrix IS the n=2 gamma-diagonal matrix."""
        warner = WarnerRandomizedResponse(0.75)
        matrix = warner.as_gamma_diagonal()
        dense = matrix.to_dense()
        assert dense[0, 0] == pytest.approx(0.75)
        assert dense[0, 1] == pytest.approx(0.25)


class TestPerturbation:
    def test_flip_rate(self, rng):
        warner = WarnerRandomizedResponse(0.8)
        answers = np.zeros(50_000, dtype=int)
        responses = warner.perturb(answers, seed=rng)
        assert responses.mean() == pytest.approx(0.2, abs=0.01)

    def test_input_validation(self):
        warner = WarnerRandomizedResponse(0.8)
        with pytest.raises(DataError):
            warner.perturb(np.array([[0, 1]]))
        with pytest.raises(DataError):
            warner.perturb(np.array([0, 2]))


class TestEstimation:
    def test_estimator_unbiased(self, rng):
        warner = WarnerRandomizedResponse(0.7)
        truth = 0.23
        answers = (rng.random(200_000) < truth).astype(int)
        responses = warner.perturb(answers, seed=rng)
        assert warner.estimate_proportion(responses) == pytest.approx(truth, abs=0.01)

    def test_equals_frapp_reconstruction(self, rng):
        """Warner's textbook estimator equals FRAPP's matrix inverse --
        FRAPP subsumes randomized response exactly."""
        warner = WarnerRandomizedResponse(0.65)
        answers = (rng.random(10_000) < 0.4).astype(int)
        responses = warner.perturb(answers, seed=rng)

        counts = np.bincount(responses, minlength=2).astype(float)
        frapp = reconstruct_counts(warner.as_gamma_diagonal(), counts)
        assert warner.estimate_proportion(responses) == pytest.approx(
            frapp[1] / len(answers), abs=1e-10
        )

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            WarnerRandomizedResponse(0.7).estimate_proportion(np.array([]))
