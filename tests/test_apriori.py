"""Tests for repro.mining.apriori."""

from itertools import combinations, product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import MiningError
from repro.mining.apriori import AprioriResult, apriori, generate_candidates
from repro.mining.counting import ExactSupportCounter
from repro.mining.itemsets import Itemset


def brute_force_frequent(dataset, min_support):
    """All frequent itemsets by exhaustive enumeration (test oracle)."""
    schema = dataset.schema
    n = dataset.n_records
    frequent = {}
    attrs = range(schema.n_attributes)
    for size in range(1, schema.n_attributes + 1):
        for subset in combinations(attrs, size):
            for values in product(*(range(schema.cardinalities[a]) for a in subset)):
                mask = np.ones(n, dtype=bool)
                for a, v in zip(subset, values):
                    mask &= dataset.column(a) == v
                support = mask.mean()
                if support >= min_support:
                    frequent[Itemset(zip(subset, values))] = support
    return frequent


class TestCandidateGeneration:
    def test_joins_shared_prefix(self):
        level = [Itemset.of((0, 1), (1, 0)), Itemset.of((0, 1), (2, 1))]
        candidates = generate_candidates(level)
        # Pruning removes it: subset {(1,0),(2,1)} is not frequent.
        assert candidates == []

    def test_join_with_closure(self):
        level = [
            Itemset.of((0, 1), (1, 0)),
            Itemset.of((0, 1), (2, 1)),
            Itemset.of((1, 0), (2, 1)),
        ]
        candidates = generate_candidates(level)
        assert candidates == [Itemset.of((0, 1), (1, 0), (2, 1))]

    def test_same_attribute_last_items_not_joined(self):
        level = [Itemset.of((0, 1), (1, 0)), Itemset.of((0, 1), (1, 1))]
        assert generate_candidates(level) == []

    def test_level1_join(self):
        level = [Itemset.of((0, 1)), Itemset.of((1, 0))]
        assert generate_candidates(level) == [Itemset.of((0, 1), (1, 0))]

    def test_empty_level(self):
        assert generate_candidates([]) == []


class TestAprioriExact:
    def test_matches_brute_force(self, survey_dataset):
        result = apriori(
            ExactSupportCounter(survey_dataset), survey_dataset.schema, 0.05
        )
        expected = brute_force_frequent(survey_dataset, 0.05)
        assert result.frequent() == pytest.approx(expected)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_random(self, seed, min_support):
        """Property: Apriori == exhaustive search on random data."""
        rng = np.random.default_rng(seed)
        schema = Schema(
            [
                Attribute("a", "xy"),
                Attribute("b", "pqr"),
                Attribute("c", "uv"),
            ]
        )
        records = np.stack(
            [rng.integers(0, c, size=60) for c in schema.cardinalities], axis=1
        )
        dataset = CategoricalDataset(schema, records)
        result = apriori(ExactSupportCounter(dataset), schema, min_support)
        assert result.frequent() == pytest.approx(
            brute_force_frequent(dataset, min_support)
        )

    def test_max_length_caps_output(self, survey_dataset):
        result = apriori(
            ExactSupportCounter(survey_dataset), survey_dataset.schema, 0.05, max_length=2
        )
        assert result.max_length <= 2

    def test_downward_closure_in_output(self, survey_dataset):
        """Every subset of a frequent itemset is frequent."""
        result = apriori(
            ExactSupportCounter(survey_dataset), survey_dataset.schema, 0.05
        )
        frequent = set(result.frequent())
        for itemset in frequent:
            for subset in itemset.subsets_dropping_one():
                assert subset in frequent

    def test_impossible_threshold_gives_empty(self, survey_dataset):
        result = apriori(
            ExactSupportCounter(survey_dataset), survey_dataset.schema, 1.0
        )
        assert result.n_frequent <= survey_dataset.schema.n_attributes

    def test_min_support_validation(self, survey_dataset):
        counter = ExactSupportCounter(survey_dataset)
        with pytest.raises(MiningError):
            apriori(counter, survey_dataset.schema, 0.0)
        with pytest.raises(MiningError):
            apriori(counter, survey_dataset.schema, 1.5)

    def test_max_length_validation(self, survey_dataset):
        with pytest.raises(MiningError):
            apriori(
                ExactSupportCounter(survey_dataset),
                survey_dataset.schema,
                0.05,
                max_length=0,
            )

    def test_bad_support_source_shape(self, survey_dataset):
        class Broken:
            def supports(self, itemsets):
                return np.zeros(1)

        with pytest.raises(MiningError):
            apriori(Broken(), survey_dataset.schema, 0.05)


class TestAprioriResult:
    @pytest.fixture
    def result(self, survey_dataset):
        return apriori(
            ExactSupportCounter(survey_dataset), survey_dataset.schema, 0.05
        )

    def test_counts_by_length(self, result):
        counts = result.counts_by_length()
        assert counts[1] == len(result.by_length[1])
        assert sum(counts.values()) == result.n_frequent

    def test_frequent_by_length(self, result):
        level1 = result.frequent(1)
        assert all(i.length == 1 for i in level1)

    def test_support_of(self, result):
        itemset, support = next(iter(result.by_length[1].items()))
        assert result.support_of(itemset) == support

    def test_support_of_missing(self, survey_dataset):
        capped = apriori(
            ExactSupportCounter(survey_dataset),
            survey_dataset.schema,
            0.05,
            max_length=1,
        )
        with pytest.raises(MiningError):
            capped.support_of(Itemset.of((0, 0), (1, 0)))

    def test_empty_result(self):
        empty = AprioriResult(min_support=0.5)
        assert empty.max_length == 0
        assert empty.n_frequent == 0
        assert empty.frequent() == {}
