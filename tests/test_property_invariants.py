"""Property-based invariants (Hypothesis) over randomly drawn schemas.

Four families of properties:

* the vectorized and sequential DET-GD samplers realise the same
  (analytic) transition matrix;
* closed-form reconstruction inverts exactly: counts pushed through the
  gamma-diagonal matrix come back unchanged, so reconstructing
  *unperturbed* (identity-perturbed) counts is the identity;
* ``clip_counts`` is idempotent (with and without renormalisation);
* schema encode/decode round-trips, and joint-count marginalisation
  agrees with direct subset counting, over random schemas and data.

Empirical checks use totals large enough (and tolerances loose enough)
that they are deterministic pass/fail functions of the drawn example --
no flaky re-runs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GammaDiagonalPerturbation
from repro.core.gamma_diagonal import GammaDiagonalMatrix
from repro.core.reconstruction import clip_counts, reconstruct_counts
from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


def schemas(max_attributes=3, max_cardinality=4):
    """Random small schemas (joint sizes up to 4**3 = 64)."""

    def build(cards):
        return Schema(
            [
                Attribute(f"a{i}", [f"c{j}" for j in range(card)])
                for i, card in enumerate(cards)
            ]
        )

    return st.lists(
        st.integers(2, max_cardinality), min_size=1, max_size=max_attributes
    ).map(build)


SEEDS = st.integers(0, 2**32 - 1)


def _random_records(schema, seed, n):
    rng = np.random.default_rng(seed)
    cards = np.asarray(schema.cardinalities)
    return rng.integers(0, cards, size=(n, schema.n_attributes))


# ----------------------------------------------------------------------
# samplers realise the same transition matrix
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    schema=schemas(max_attributes=2, max_cardinality=3),
    gamma=st.floats(5.0, 25.0),
    seed=SEEDS,
)
def test_vectorized_and_sequential_realise_same_transition_matrix(
    schema, gamma, seed
):
    """Both samplers' empirical columns match the analytic gamma-diagonal
    column (TV distance), hence each other."""
    n = schema.joint_size
    n_trials = 20_000
    rng = np.random.default_rng(seed)
    original = int(rng.integers(n))
    dataset = CategoricalDataset.from_joint_indices(
        schema, np.full(n_trials, original)
    )
    matrix = GammaDiagonalMatrix(n=n, gamma=gamma)
    analytic = np.full(n, matrix.x)
    analytic[original] = matrix.diagonal

    for method in ("vectorized", "sequential"):
        engine = GammaDiagonalPerturbation(schema, gamma, method=method)
        perturbed = engine.perturb(dataset, seed=rng)
        freq = np.bincount(perturbed.joint_indices(), minlength=n) / n_trials
        tv = 0.5 * np.abs(freq - analytic).sum()
        # E[TV] ~ sqrt(n / (2*pi*n_trials)) ~ 0.009 for n=9; 0.05 is
        # many standard deviations away yet far below any structural
        # mismatch (swapping diagonal and off-diagonal shifts TV by
        # ~0.3 at these gammas).
        assert tv < 0.05, f"{method} sampler TV={tv:.4f}"


# ----------------------------------------------------------------------
# reconstruction inverts exactly
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(2, 60),
    gamma=st.floats(1.2, 40.0),
    seed=SEEDS,
)
def test_reconstruction_inverts_the_forward_map(n, gamma, seed):
    """reconstruct_counts(A, A @ X) == X through the closed form."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 1_000, size=n).astype(float)
    matrix = GammaDiagonalMatrix(n=n, gamma=gamma)
    observed = matrix.matvec(counts)
    estimate = reconstruct_counts(matrix, observed)
    assert np.allclose(estimate, counts, atol=1e-6 * max(1.0, counts.max()))


@settings(max_examples=50, deadline=None)
@given(n=st.integers(2, 60), seed=SEEDS)
def test_reconstruction_of_unperturbed_counts_is_identity(n, seed):
    """With the identity matrix (no perturbation), Y = X and the solver
    must return the counts untouched."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 1_000, size=n).astype(float)
    estimate = reconstruct_counts(np.eye(n), counts)
    assert np.allclose(estimate, counts)


# ----------------------------------------------------------------------
# clip_counts idempotence
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=50,
    ),
    renormalize=st.booleans(),
)
def test_clip_counts_is_idempotent(values, renormalize):
    once = clip_counts(np.array(values), renormalize=renormalize)
    twice = clip_counts(once, renormalize=renormalize)
    assert (once >= 0).all()
    assert np.allclose(once, twice, rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# schema round-trips and marginalisation
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(schema=schemas(), seed=SEEDS, n=st.integers(0, 200))
def test_schema_encode_decode_roundtrip(schema, seed, n):
    records = _random_records(schema, seed, n)
    joint = schema.encode(records)
    assert joint.shape == (n,)
    if n:
        assert joint.min() >= 0 and joint.max() < schema.joint_size
    assert np.array_equal(schema.decode(joint), records)


@settings(max_examples=50, deadline=None)
@given(schema=schemas(), seed=SEEDS)
def test_decode_encode_roundtrip_over_full_domain(schema, seed):
    joint = np.arange(schema.joint_size, dtype=np.int64)
    rng = np.random.default_rng(seed)
    rng.shuffle(joint)
    assert np.array_equal(schema.encode(schema.decode(joint)), joint)


@settings(max_examples=50, deadline=None)
@given(schema=schemas(), seed=SEEDS, n=st.integers(1, 300))
def test_marginalized_joint_counts_match_subset_counts(schema, seed, n):
    """The streaming pipeline's subset answers equal direct counting."""
    dataset = CategoricalDataset(schema, _random_records(schema, seed, n))
    joint_counts = dataset.joint_counts()
    rng = np.random.default_rng(seed + 1)
    m = schema.n_attributes
    size = int(rng.integers(1, m + 1))
    positions = tuple(rng.permutation(m)[:size].tolist())
    assert np.array_equal(
        schema.marginalize_counts(joint_counts, positions),
        dataset.subset_counts(positions),
    )


@settings(max_examples=50, deadline=None)
@given(schema=schemas(), seed=SEEDS, n=st.integers(1, 200))
def test_accumulator_totals_are_chunk_split_invariant(schema, seed, n):
    """Folding any split of the stream yields the same totals."""
    from repro.pipeline import JointCountAccumulator

    records = _random_records(schema, seed, n)
    whole = JointCountAccumulator(schema).update(records)
    rng = np.random.default_rng(seed + 1)
    split = sorted(rng.integers(0, n + 1, size=2).tolist())
    parts = JointCountAccumulator(schema)
    for chunk in np.split(records, split):
        parts.update(chunk)
    assert np.array_equal(whole.counts, parts.counts)
    assert whole.n_records == parts.n_records
