"""Tests for repro.core.marginal (Eq. 28 marginal matrices)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GammaDiagonalPerturbation
from repro.core.marginal import (
    estimate_subset_supports,
    marginal_matrix,
    perturbed_support_of,
)
from repro.exceptions import MatrixError, PrivacyError
from repro.stats.linalg import is_markov_matrix


class TestMarginalMatrix:
    def test_eq28_entries(self):
        """Diag = gamma*x + (nC/nCs - 1)x, off = (nC/nCs)x."""
        gamma, full, subset = 19.0, 2000, 4
        m = marginal_matrix(gamma, full, subset)
        x = 1.0 / (gamma + full - 1)
        assert m.diagonal_value == pytest.approx(gamma * x + (500 - 1) * x)
        assert m.off_diagonal_value == pytest.approx(500 * x)

    def test_full_subset_recovers_gamma_diagonal(self):
        from repro.core.gamma_diagonal import GammaDiagonalMatrix

        gamma, n = 7.0, 60
        marginal = marginal_matrix(gamma, n, n)
        direct = GammaDiagonalMatrix(n, gamma)
        assert np.allclose(marginal.to_dense(), direct.to_dense())

    @given(
        st.floats(min_value=1.5, max_value=50.0),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60)
    def test_is_markov_for_any_factorisation(self, gamma, a, b):
        full, subset = a * b * 4, a * b
        matrix = marginal_matrix(gamma, full, subset)
        assert is_markov_matrix(matrix.to_dense())

    def test_condition_number_independent_of_subset(self):
        """The flat DET-GD line of Fig. 4."""
        gamma, full = 19.0, 2000
        conds = {
            subset: marginal_matrix(gamma, full, subset).condition_number()
            for subset in (2, 4, 20, 100, 500, 2000)
        }
        values = list(conds.values())
        assert all(v == pytest.approx(values[0]) for v in values)
        assert values[0] == pytest.approx((gamma + full - 1) / (gamma - 1))

    def test_divisibility_required(self):
        with pytest.raises(MatrixError):
            marginal_matrix(19.0, 2000, 3)

    def test_gamma_validation(self):
        with pytest.raises(PrivacyError):
            marginal_matrix(1.0, 10, 2)

    def test_size_validation(self):
        with pytest.raises(MatrixError):
            marginal_matrix(19.0, 1, 1)


class TestClosedFormEstimation:
    @given(
        st.floats(min_value=1.5, max_value=50.0),
        st.integers(min_value=2, max_value=10),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80)
    def test_estimate_inverts_forward_map(self, gamma, subset, true_support):
        full = subset * 8
        forward = perturbed_support_of(true_support, gamma, full, subset)
        recovered = estimate_subset_supports(forward, gamma, full, subset)
        assert recovered == pytest.approx(true_support, abs=1e-9)

    def test_matches_matrix_solve(self):
        """The O(1) closed form equals solving the full nCs system."""
        gamma, full, subset = 19.0, 240, 6
        rng = np.random.default_rng(0)
        true = rng.dirichlet(np.ones(subset))
        matrix = marginal_matrix(gamma, full, subset)
        observed = matrix.to_dense() @ true
        by_solve = matrix.solve(observed)
        by_closed_form = estimate_subset_supports(observed, gamma, full, subset)
        assert np.allclose(by_solve, by_closed_form, atol=1e-10)

    def test_vectorized_over_candidates(self):
        observed = np.array([0.25, 0.25, 0.5])
        estimates = estimate_subset_supports(observed, 19.0, 20, 2)
        assert estimates.shape == (3,)


class TestEndToEndConsistency:
    def test_perturb_then_estimate_recovers_subset_supports(self, survey_schema, survey_dataset):
        """Full pipeline oracle: perturb a real dataset, observe subset
        supports, apply the closed form, compare to the truth."""
        gamma = 15.0
        engine = GammaDiagonalPerturbation(survey_schema, gamma)
        perturbed = engine.perturb(survey_dataset, seed=0)

        positions = (0, 2)  # smokes x income
        n = survey_dataset.n_records
        true_supports = survey_dataset.subset_counts(positions) / n
        observed = perturbed.subset_counts(positions) / n
        estimates = estimate_subset_supports(
            observed,
            gamma,
            survey_schema.joint_size,
            survey_schema.subset_size(positions),
        )
        # gamma=15 on a 12-cell domain keeps ~54% of records: estimates
        # should track the truth to within a few percent at N=5000.
        assert np.allclose(estimates, true_supports, atol=0.05)
        assert estimates.sum() == pytest.approx(1.0, abs=1e-9)
