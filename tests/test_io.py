"""Tests for repro.data.io (CSV round-tripping)."""

import pytest

from repro.data.io import load_csv, save_csv
from repro.exceptions import DataError


class TestRoundTrip:
    def test_roundtrip_preserves_dataset(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.csv"
        save_csv(tiny_dataset, path)
        loaded = load_csv(tiny_dataset.schema, path)
        assert loaded == tiny_dataset

    def test_file_is_label_valued(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.csv"
        save_csv(tiny_dataset, path)
        text = path.read_text()
        assert text.splitlines()[0] == "color,size"
        assert "red" in text and "blue" in text

    def test_empty_dataset_roundtrip(self, tiny_schema, tmp_path):
        import numpy as np

        from repro.data.dataset import CategoricalDataset

        empty = CategoricalDataset(tiny_schema, np.empty((0, 2), dtype=int))
        path = tmp_path / "empty.csv"
        save_csv(empty, path)
        assert load_csv(tiny_schema, path).n_records == 0


class TestLoadValidation:
    def test_header_mismatch(self, tiny_dataset, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("wrong,header\nred,s\n")
        with pytest.raises(DataError):
            load_csv(tiny_dataset.schema, path)

    def test_unknown_label(self, tiny_schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("color,size\npurple,s\n")
        with pytest.raises(DataError):
            load_csv(tiny_schema, path)

    def test_empty_file(self, tiny_schema, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_csv(tiny_schema, path)
