"""Tests for repro.data.io (CSV round-tripping, the binary FRD format)."""

import numpy as np
import pytest

from repro.data.backing import column_dtypes, record_dtype
from repro.data.dataset import CategoricalDataset
from repro.data.io import (
    FRD_MAGIC,
    FrdWriter,
    load_csv,
    open_frd,
    save_csv,
    save_frd,
    save_frd_chunks,
)
from repro.exceptions import DataError


class TestRoundTrip:
    def test_roundtrip_preserves_dataset(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.csv"
        save_csv(tiny_dataset, path)
        loaded = load_csv(tiny_dataset.schema, path)
        assert loaded == tiny_dataset

    def test_file_is_label_valued(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.csv"
        save_csv(tiny_dataset, path)
        text = path.read_text()
        assert text.splitlines()[0] == "color,size"
        assert "red" in text and "blue" in text

    def test_empty_dataset_roundtrip(self, tiny_schema, tmp_path):
        import numpy as np

        from repro.data.dataset import CategoricalDataset

        empty = CategoricalDataset(tiny_schema, np.empty((0, 2), dtype=int))
        path = tmp_path / "empty.csv"
        save_csv(empty, path)
        assert load_csv(tiny_schema, path).n_records == 0


class TestLoadValidation:
    def test_header_mismatch(self, tiny_dataset, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("wrong,header\nred,s\n")
        with pytest.raises(DataError):
            load_csv(tiny_dataset.schema, path)

    def test_unknown_label(self, tiny_schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("color,size\npurple,s\n")
        with pytest.raises(DataError):
            load_csv(tiny_schema, path)

    def test_empty_file(self, tiny_schema, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_csv(tiny_schema, path)


# ----------------------------------------------------------------------
# FRD: the compact columnar binary format
# ----------------------------------------------------------------------
class TestFrdRoundTrip:
    def test_roundtrip_preserves_dataset(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.frd"
        save_frd(tiny_dataset, path)
        frd = open_frd(path, schema=tiny_dataset.schema)
        assert frd.n_records == tiny_dataset.n_records
        assert frd.schema == tiny_dataset.schema
        assert frd.to_dataset() == tiny_dataset

    def test_columns_stored_at_minimal_dtype(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.frd"
        save_frd(tiny_dataset, path)
        frd = open_frd(path)
        for j, dtype in enumerate(column_dtypes(tiny_dataset.schema)):
            assert frd.column(j).dtype == dtype
            assert np.array_equal(frd.column(j), tiny_dataset.records[:, j])
        assert frd.dtype == record_dtype(tiny_dataset.schema)

    def test_iter_chunks_byte_equality(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.frd"
        save_frd(tiny_dataset, path)
        chunks = list(open_frd(path).iter_chunks(3))
        assert [c.shape[0] for c in chunks] == [3, 3, 2]
        rebuilt = np.concatenate(chunks, axis=0)
        assert rebuilt.tobytes() == (
            tiny_dataset.with_backend("compact").records.tobytes()
        )

    def test_writes_are_deterministic(self, tiny_dataset, tmp_path):
        a, b = tmp_path / "a.frd", tmp_path / "b.frd"
        save_frd(tiny_dataset, a)
        save_frd(tiny_dataset, b)
        assert a.read_bytes() == b.read_bytes()

    def test_streaming_writer_unknown_extent(self, tiny_dataset, tmp_path):
        path = tmp_path / "streamed.frd"
        written = save_frd_chunks(
            tiny_dataset.schema, tiny_dataset.iter_chunks(3), path
        )
        assert written == tiny_dataset.n_records
        assert open_frd(path).to_dataset() == tiny_dataset
        # Chunk boundaries leave no trace in the file.
        whole = tmp_path / "whole.frd"
        save_frd(tiny_dataset, whole)
        assert path.read_bytes() == whole.read_bytes()

    def test_writer_accepts_raw_arrays_and_validates(self, tiny_schema, tmp_path):
        path = tmp_path / "raw.frd"
        with FrdWriter(tiny_schema, path) as writer:
            writer.write(np.array([[0, 0], [1, 2]]))
        assert open_frd(path).n_records == 2
        with pytest.raises(DataError):
            with FrdWriter(tiny_schema, tmp_path / "bad.frd") as writer:
                writer.write(np.array([[0, 99]]))

    def test_empty_dataset_roundtrip(self, tiny_schema, tmp_path):
        empty = CategoricalDataset(tiny_schema, np.empty((0, 2), dtype=int))
        path = tmp_path / "empty.frd"
        save_frd(empty, path)
        frd = open_frd(path)
        assert frd.n_records == 0
        assert list(frd.iter_chunks(4)) == []
        assert frd.to_dataset() == empty

    def test_spool_files_cleaned_up(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.frd"
        save_frd(tiny_dataset, path)
        assert [p.name for p in tmp_path.iterdir()] == ["tiny.frd"]


class TestFrdValidation:
    def test_bad_magic_rejected(self, tiny_schema, tmp_path):
        path = tmp_path / "not.frd"
        path.write_bytes(b"definitely not an FRD file")
        with pytest.raises(DataError):
            open_frd(path)

    def test_corrupt_header_rejected(self, tiny_dataset, tmp_path):
        path = tmp_path / "corrupt.frd"
        save_frd(tiny_dataset, path)
        blob = bytearray(path.read_bytes())
        blob[len(FRD_MAGIC) + 4] ^= 0xFF  # flip a header byte
        path.write_bytes(bytes(blob))
        with pytest.raises(DataError):
            open_frd(path)

    def test_schema_mismatch_rejected(self, tiny_dataset, survey_schema, tmp_path):
        path = tmp_path / "tiny.frd"
        save_frd(tiny_dataset, path)
        with pytest.raises(DataError):
            open_frd(path, schema=survey_schema)

    def test_out_of_domain_file_values_caught(self, tiny_dataset, tmp_path):
        path = tmp_path / "tampered.frd"
        save_frd(tiny_dataset, path)
        blob = bytearray(path.read_bytes())
        blob[-1] = 250  # last cell of the last column: size index 250 >= 3
        path.write_bytes(bytes(blob))
        with pytest.raises(DataError):
            open_frd(path).to_dataset()
