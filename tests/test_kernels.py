"""Equivalence suite for the bit-packed support-counting kernels.

The contract under test: the ``"bitmap"`` backend is *exact* -- integer
counts identical to the ``"loops"`` ``bincount`` path (hence
bit-identical supports), estimator outputs equal to the loop-path
estimators, and word-aligned chunk concatenation indistinguishable from
one-shot packing -- across fixed cases and Hypothesis-generated
schemas/datasets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mask import MaskPerturbation
from repro.core.engine import GammaDiagonalPerturbation
from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError, MiningError
from repro.mining.apriori import generate_candidates
from repro.mining.counting import (
    ExactSupportCounter,
    GammaDiagonalSupportEstimator,
    MaskSupportEstimator,
)
from repro.mining.itemsets import Itemset, all_items
from repro.mining.kernels import (
    BitmapSupportCounter,
    TransactionBitmaps,
    pattern_counts,
    popcount_words,
    validate_backend,
)
from repro.mining.reconstructing import mine_exact
from repro.pipeline import (
    BitmapAccumulator,
    BitmapStreamSupportEstimator,
    PerturbationPipeline,
    mine_stream,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


def schemas(max_attributes=4, max_cardinality=4):
    """Random small schemas."""

    def build(cards):
        return Schema(
            [
                Attribute(f"a{i}", [f"c{j}" for j in range(card)])
                for i, card in enumerate(cards)
            ]
        )

    return st.lists(
        st.integers(2, max_cardinality), min_size=1, max_size=max_attributes
    ).map(build)


SEEDS = st.integers(0, 2**32 - 1)


def _random_dataset(schema, seed, n):
    rng = np.random.default_rng(seed)
    cards = np.asarray(schema.cardinalities)
    return CategoricalDataset(
        schema, rng.integers(0, cards, size=(n, schema.n_attributes))
    )


def _apriori_levels(schema, counter, min_support=0.01, max_levels=3):
    """Candidate batches exactly as Apriori would issue them."""
    batches = []
    candidates = all_items(schema)
    for _ in range(max_levels):
        if not candidates:
            break
        batches.append(list(candidates))
        supports = counter.supports(candidates)
        frequent = [
            itemset
            for itemset, support in zip(candidates, supports)
            if support >= min_support
        ]
        candidates = generate_candidates(frequent)
    return batches


# ----------------------------------------------------------------------
# packing primitives
# ----------------------------------------------------------------------


def test_popcount_matches_python_bit_count():
    rng = np.random.default_rng(0)
    words = rng.integers(0, 2**63, size=(5, 7), dtype=np.int64).astype(np.uint64)
    expected = np.array(
        [[int(w).bit_count() for w in row] for row in words]
    )
    assert popcount_words(words, axis=1).tolist() == expected.sum(axis=1).tolist()
    assert int(popcount_words(words)) == int(expected.sum())


@pytest.mark.parametrize("n_records", [0, 1, 63, 64, 65, 1000])
def test_item_bitmap_popcounts_equal_value_counts(survey_schema, n_records):
    dataset = _random_dataset(survey_schema, seed=n_records, n=n_records)
    bitmaps = TransactionBitmaps.from_dataset(dataset)
    for attr in range(survey_schema.n_attributes):
        counts = dataset.value_counts(attr)
        for value in range(survey_schema.cardinalities[attr]):
            row = bitmaps.words[bitmaps.item_row(attr, value)]
            assert int(popcount_words(row)) == counts[value]


def test_bitmaps_reject_bad_shapes(survey_schema):
    with pytest.raises(DataError):
        TransactionBitmaps.from_records(survey_schema, np.zeros((4, 2), dtype=int))
    with pytest.raises(DataError):
        TransactionBitmaps.from_boolean_matrix(survey_schema, np.zeros((4, 3)))
    with pytest.raises(DataError):
        TransactionBitmaps.concatenate([])


def test_bitmaps_reject_out_of_domain_records(survey_schema):
    """Bad values must raise, not bleed into a neighbour's item rows."""
    with pytest.raises(DataError):
        TransactionBitmaps.from_records(survey_schema, [[0, -1, 0]])
    with pytest.raises(DataError):
        TransactionBitmaps.from_records(survey_schema, [[3, 0, 0]])


def test_validate_backend():
    assert validate_backend("BITMAP") == "bitmap"
    assert validate_backend("loops") == "loops"
    assert validate_backend("Native") == "native"
    with pytest.raises(MiningError):
        validate_backend("simd")


# ----------------------------------------------------------------------
# exact counting: bitmap == loops, bit for bit
# ----------------------------------------------------------------------


def test_levelwise_supports_bit_identical(survey_dataset):
    loops = ExactSupportCounter(survey_dataset, count_backend="loops")
    bitmap = ExactSupportCounter(survey_dataset, count_backend="bitmap")
    for batch in _apriori_levels(
        survey_dataset.schema,
        ExactSupportCounter(survey_dataset, "loops"),
        min_support=0.01,
    ):
        expected = loops.supports(batch)
        got = bitmap.supports(batch)
        assert np.array_equal(expected, got)


def test_adhoc_itemsets_without_cached_prefix(survey_dataset):
    """Arbitrary queries (no level cache warm-up) still count exactly."""
    loops = ExactSupportCounter(survey_dataset, count_backend="loops")
    counter = BitmapSupportCounter.from_dataset(survey_dataset)
    itemsets = [
        Itemset.of((0, 2), (1, 1), (2, 0)),
        Itemset.of((2, 1)),
        Itemset.of((0, 0), (2, 1)),
    ]
    assert np.array_equal(loops.supports(itemsets), counter.supports(itemsets))


def test_level_cache_is_used_and_exact(survey_dataset):
    """Level-k batches hit the cached (k-1) bitmaps and stay exact."""
    counter = BitmapSupportCounter.from_dataset(survey_dataset)
    loops = ExactSupportCounter(survey_dataset, count_backend="loops")
    items = all_items(survey_dataset.schema)
    counter.supports(items)
    assert set(counter._cache_rows) == {itemset.items for itemset in items}
    pairs = generate_candidates(items)
    got = counter.supports(pairs)
    assert np.array_equal(loops.supports(pairs), got)
    assert set(counter._cache_rows) == {itemset.items for itemset in pairs}


def test_empty_dataset_rejected(tiny_schema):
    empty = CategoricalDataset(tiny_schema, np.empty((0, 2), dtype=int))
    with pytest.raises(MiningError):
        ExactSupportCounter(empty, count_backend="bitmap").supports(
            [Itemset.of((0, 0))]
        )


@settings(max_examples=40, deadline=None)
@given(schema=schemas(), seed=SEEDS, n=st.integers(1, 300))
def test_supports_bit_identical_on_random_schemas(schema, seed, n):
    """Hypothesis: every Apriori-shaped batch counts identically."""
    dataset = _random_dataset(schema, seed, n)
    loops = ExactSupportCounter(dataset, count_backend="loops")
    others = [
        ExactSupportCounter(dataset, count_backend=backend)
        for backend in ("bitmap", "native")
    ]
    for batch in _apriori_levels(
        schema, ExactSupportCounter(dataset, "loops"), min_support=0.0
    ):
        expected = loops.supports(batch)
        for counter in others:
            assert np.array_equal(expected, counter.supports(batch))


@settings(max_examples=25, deadline=None)
@given(
    schema=schemas(max_attributes=3),
    seed=SEEDS,
    n=st.integers(1, 200),
    chunk_size=st.integers(1, 97),
)
def test_chunked_merge_equals_one_shot_packing(schema, seed, n, chunk_size):
    """Word-aligned concatenation never changes any support query."""
    dataset = _random_dataset(schema, seed, n)
    one_shot = BitmapSupportCounter.from_dataset(dataset)
    accumulator = BitmapAccumulator(schema)
    for chunk in dataset.iter_chunks(chunk_size):
        accumulator.update(chunk)
    merged = BitmapSupportCounter(accumulator.bitmaps)
    assert accumulator.n_records == dataset.n_records
    items = all_items(schema)
    pairs = generate_candidates(items)
    queries = items + pairs[:50]
    assert np.array_equal(one_shot.supports(queries), merged.supports(queries))


def test_bitmap_accumulator_merge(survey_dataset):
    schema = survey_dataset.schema
    halves = list(survey_dataset.iter_chunks(survey_dataset.n_records // 2 + 1))
    left = BitmapAccumulator(schema).update(halves[0])
    right = BitmapAccumulator(schema).update(halves[1])
    left.merge(right)
    assert left.n_records == survey_dataset.n_records
    one_shot = BitmapSupportCounter.from_dataset(survey_dataset)
    merged = BitmapSupportCounter(left.bitmaps)
    items = all_items(schema)
    assert np.array_equal(one_shot.supports(items), merged.supports(items))


def test_bitmap_accumulator_rejects_schema_mismatch(survey_dataset, tiny_schema):
    accumulator = BitmapAccumulator(tiny_schema)
    with pytest.raises(DataError):
        accumulator.update(survey_dataset)
    with pytest.raises(DataError):
        BitmapAccumulator(tiny_schema).bitmaps  # noqa: B018 - empty merge


# ----------------------------------------------------------------------
# estimators: bitmap == loops
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["bitmap", "native"])
def test_gamma_diagonal_estimator_backends_agree(
    survey_schema, survey_dataset, backend
):
    gamma = 19.0
    perturbed = GammaDiagonalPerturbation(survey_schema, gamma).perturb(
        survey_dataset, seed=5
    )
    loops = GammaDiagonalSupportEstimator(perturbed, gamma, count_backend="loops")
    kernel = GammaDiagonalSupportEstimator(perturbed, gamma, count_backend=backend)
    itemsets = all_items(survey_schema) + [
        Itemset.of((0, 0), (1, 1)),
        Itemset.of((0, 1), (1, 0), (2, 1)),
    ]
    expected = loops.supports(itemsets)
    got = kernel.supports(itemsets)
    assert np.allclose(expected, got, rtol=0, atol=0)


def test_mask_estimator_backends_agree(survey_schema, survey_dataset):
    mask = MaskPerturbation(survey_schema, p=0.85)
    bits = mask.perturb(survey_dataset, seed=6)
    loops = MaskSupportEstimator(survey_schema, bits, mask, count_backend="loops")
    bitmap = MaskSupportEstimator(survey_schema, bits, mask, count_backend="bitmap")
    itemsets = [
        Itemset.of((0, 0)),
        Itemset.of((0, 0), (1, 1)),
        Itemset.of((0, 2), (1, 0), (2, 1)),
    ]
    assert np.allclose(
        loops.supports(itemsets), bitmap.supports(itemsets), rtol=0, atol=0
    )


@settings(max_examples=20, deadline=None)
@given(schema=schemas(max_attributes=3, max_cardinality=3), seed=SEEDS)
def test_mask_pattern_counts_equal_bincount(schema, seed):
    """The Möbius kernel reproduces the per-candidate bincount exactly."""
    dataset = _random_dataset(schema, seed, 150)
    mask = MaskPerturbation(schema, p=0.8)
    bits = mask.perturb(dataset, seed=seed)
    bitmaps = TransactionBitmaps.from_boolean_matrix(schema, bits)
    rng = np.random.default_rng(seed)
    positions = rng.choice(
        schema.n_boolean, size=min(3, schema.n_boolean), replace=False
    )
    positions = [int(p) for p in positions]
    k = len(positions)
    sub = np.asarray(bits)[:, positions].astype(np.int64)
    weights = 1 << np.arange(k - 1, -1, -1)
    expected = np.bincount(sub @ weights, minlength=1 << k)
    assert np.array_equal(expected, pattern_counts(bitmaps, positions))


# ----------------------------------------------------------------------
# end to end: miners and streams
# ----------------------------------------------------------------------


def test_mine_exact_backends_identical(survey_dataset):
    loops = mine_exact(survey_dataset, 0.05, count_backend="loops")
    bitmap = mine_exact(survey_dataset, 0.05, count_backend="bitmap")
    native = mine_exact(survey_dataset, 0.05, count_backend="native")
    assert loops.frequent() == bitmap.frequent() == native.frequent()
    assert loops.counts_by_length() == bitmap.counts_by_length()


def test_mine_stream_backends_identical(survey_dataset):
    schema = survey_dataset.schema
    kwargs = dict(
        schema=schema,
        gamma=19.0,
        min_support=0.05,
        chunk_size=700,
        seed=11,
    )
    loops = mine_stream(survey_dataset, count_backend="loops", **kwargs)
    bitmap = mine_stream(survey_dataset, count_backend="bitmap", **kwargs)
    native = mine_stream(survey_dataset, count_backend="native", **kwargs)
    assert loops.frequent() == bitmap.frequent() == native.frequent()


def test_bitmap_stream_estimator_matches_materialised_path(survey_dataset):
    """workers=1 chunked bitmaps == one-shot perturb + direct estimator."""
    schema = survey_dataset.schema
    gamma = 19.0
    engine = GammaDiagonalPerturbation(schema, gamma)
    pipeline = PerturbationPipeline(engine, chunk_size=512, workers=1)
    streamed = BitmapStreamSupportEstimator(
        pipeline.accumulate_bitmaps(survey_dataset, seed=21), gamma
    )
    direct = GammaDiagonalSupportEstimator(
        engine.perturb(survey_dataset, seed=21), gamma, count_backend="bitmap"
    )
    itemsets = all_items(schema) + [Itemset.of((0, 0), (2, 1))]
    assert np.array_equal(direct.supports(itemsets), streamed.supports(itemsets))


def test_bitmap_stream_estimator_sees_later_folds(survey_dataset):
    """Folding more chunks after a query must refresh the counter."""
    schema = survey_dataset.schema
    halves = list(survey_dataset.iter_chunks(survey_dataset.n_records // 2 + 1))
    accumulator = BitmapAccumulator(schema).update(halves[0])
    estimator = BitmapStreamSupportEstimator(accumulator, gamma=19.0)
    items = all_items(schema)
    estimator.supports(items)  # snapshot the first half
    accumulator.update(halves[1])
    got = estimator.supports(items)
    full = BitmapAccumulator(schema).update(survey_dataset)
    expected = BitmapStreamSupportEstimator(full, gamma=19.0).supports(items)
    assert np.array_equal(expected, got)


def test_accumulate_bitmaps_worker_invariance(survey_dataset):
    """Worker-side packing returns the same bitmapped supports."""
    schema = survey_dataset.schema
    engine = GammaDiagonalPerturbation(schema, 19.0)
    supports = {}
    items = all_items(schema)
    for workers in (1, 2):
        pipeline = PerturbationPipeline(
            engine, chunk_size=512, workers=workers, seeding="spawn"
        )
        accumulator = pipeline.accumulate_bitmaps(survey_dataset, seed=3)
        supports[workers] = BitmapSupportCounter(accumulator.bitmaps).supports(
            items
        )
    assert np.array_equal(supports[1], supports[2])


def test_bitmap_stream_estimator_rejects_empty(survey_schema):
    accumulator = BitmapAccumulator(survey_schema)
    estimator = BitmapStreamSupportEstimator(accumulator, gamma=19.0)
    with pytest.raises(MiningError):
        estimator.supports([Itemset.of((0, 0))])


def test_miner_drivers_agree_across_backends(survey_dataset):
    from repro.mining.reconstructing import make_miner

    schema = survey_dataset.schema
    results = {
        backend: make_miner("det-gd", schema, 19.0, count_backend=backend)
        .mine(survey_dataset, 0.05, seed=33)
        .frequent()
        for backend in ("loops", "bitmap", "native")
    }
    assert results["loops"] == results["bitmap"] == results["native"]


@settings(max_examples=4, deadline=None)
@given(
    schema=schemas(max_attributes=3, max_cardinality=3),
    seed=SEEDS,
    n=st.integers(1, 150),
)
def test_backend_worker_dispatch_matrix_bit_identical(schema, seed, n):
    """Hypothesis: perturbed records and counts are invariant across the
    full backend x workers x dispatch grid.

    One reference cell (workers=1, pickle) pins the perturbed records;
    every other execution cell must reproduce them bit for bit, and on
    each cell's output all three count backends must return identical
    Apriori-level supports.
    """
    dataset = _random_dataset(schema, seed, n)
    engine = GammaDiagonalPerturbation(schema, 19.0)
    items = all_items(schema)
    queries = items + generate_candidates(items)[:30]
    reference_records = None
    reference_supports = None
    for workers in (1, 4):
        for dispatch in ("pickle", "shm"):
            pipeline = PerturbationPipeline(
                engine,
                chunk_size=48,
                workers=workers,
                seeding="spawn",
                dispatch=dispatch,
            )
            perturbed = pipeline.perturb(dataset, seed=seed % 1009)
            if reference_records is None:
                reference_records = np.asarray(perturbed.records).copy()
            else:
                assert np.array_equal(reference_records, perturbed.records)
            for backend in ("loops", "bitmap", "native"):
                supports = ExactSupportCounter(
                    perturbed, count_backend=backend
                ).supports(queries)
                if reference_supports is None:
                    reference_supports = supports
                else:
                    assert np.array_equal(reference_supports, supports)
