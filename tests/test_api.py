"""The stable ``repro.api`` facade and its pinned surface.

Covers: Session/offline-engine bit-identity (direct and pipelined),
mechanism designator resolution, the one-shot module functions, the
``connect`` address parser, and the committed-surface gate.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import api
from repro.exceptions import ExperimentError
from repro.mechanisms import MechanismSpec, create

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def data():
    return repro.generate_census(600, seed=3)


@pytest.fixture(scope="module")
def offline(data):
    return create("det-gd", data.schema, gamma=19.0).perturb(data, seed=7)


class TestSession:
    def test_perturb_bit_identical_to_engine(self, data, offline):
        session = api.Session(data.schema, mechanism="det-gd", seed=7)
        released = session.perturb(data)
        np.testing.assert_array_equal(released.records, offline.records)

    def test_pipelined_session_bit_identical(self, data, offline):
        session = api.Session(
            data.schema, mechanism="det-gd", seed=7, chunk_size=101
        )
        released = session.perturb(data)
        np.testing.assert_array_equal(released.records, offline.records)

    def test_mechanism_designators_are_equivalent(self, data, offline):
        spellings = [
            {"mechanism": "det-gd"},
            {"mechanism": {"name": "det-gd", "params": {"gamma": 19.0}}},
            {"mechanism": MechanismSpec("det-gd", {"gamma": 19.0})},
            {"mechanism": create("det-gd", data.schema, gamma=19.0)},
            {"mechanism": "det-gd", "params": {"gamma": 19.0}},
        ]
        for kwargs in spellings:
            session = api.Session(data.schema, seed=7, **kwargs)
            np.testing.assert_array_equal(
                session.perturb(data).records, offline.records
            )

    def test_raw_array_input(self, data, offline):
        session = api.Session(data.schema, mechanism="det-gd", seed=7)
        released = session.perturb(np.asarray(data.records))
        np.testing.assert_array_equal(released.records, offline.records)

    def test_reconstruct_matches_marginal_inversion(self, data, offline):
        from repro.mechanisms.base import MarginalInversionEstimator
        from repro.mining.itemsets import Itemset

        session = api.Session(data.schema, mechanism="det-gd", seed=7)
        itemsets = [Itemset([(0, 1)]), [(1, 2), (2, 0)]]
        supports = session.reconstruct(offline, itemsets)
        mechanism = create("det-gd", data.schema, gamma=19.0)
        reference = MarginalInversionEstimator(
            mechanism, offline.subset_counts, offline.n_records
        )
        expected = reference.supports(
            [Itemset([(0, 1)]), Itemset([(1, 2), (2, 0)])]
        )
        np.testing.assert_array_equal(supports, expected)

    def test_mine_returns_apriori_result(self, data):
        session = api.Session(data.schema, mechanism="det-gd", seed=7)
        result = session.mine(data, 0.3, max_length=2)
        assert result.max_length <= 2
        assert result.n_frequent > 0

    def test_schema_mismatch_and_bad_designator(self, data):
        from repro.data import health_schema

        with pytest.raises(ExperimentError):
            api.Session(
                health_schema(),
                mechanism=create("det-gd", data.schema, gamma=19.0),
            )
        with pytest.raises(ExperimentError):
            api.Session(data.schema, mechanism=42)
        with pytest.raises(ExperimentError):
            api.Session(
                data.schema,
                mechanism=create("det-gd", data.schema, gamma=19.0),
                params={"gamma": 3.0},
            )


class TestModuleFunctions:
    def test_one_shot_perturb(self, data, offline):
        released = api.perturb(data, seed=7)
        np.testing.assert_array_equal(released.records, offline.records)
        # Also via the top-level re-export.
        released = repro.perturb(data, seed=7)
        np.testing.assert_array_equal(released.records, offline.records)

    def test_one_shot_reconstruct_and_mine(self, data, offline):
        supports = api.reconstruct(offline, [[(0, 1)]])
        assert supports.shape == (1,)
        result = api.mine(data, 0.3, seed=7, max_length=1)
        assert result.n_frequent > 0


class TestConnect:
    def test_address_forms(self):
        client = api.connect("http://10.0.0.5:9000/")
        assert (client.host, client.port) == ("10.0.0.5", 9000)
        client = api.connect("example.org:8001")
        assert (client.host, client.port) == ("example.org", 8001)
        client = api.connect(7777)
        assert (client.host, client.port) == ("127.0.0.1", 7777)
        client = api.connect()
        assert (client.host, client.port) == ("127.0.0.1", 8417)
        with pytest.raises(ExperimentError):
            api.connect("host:not-a-port")


class TestSurfaceGate:
    def test_facade_is_re_exported(self):
        for name in api.__all__:
            assert getattr(repro, name) is getattr(api, name)
            assert name in repro.__all__

    def test_committed_surface_matches(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_api_surface.py")],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
        )
        assert result.returncode == 0, result.stdout + result.stderr
