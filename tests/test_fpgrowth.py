"""Tests for repro.mining.fpgrowth (cross-check against Apriori)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import MiningError
from repro.mining.fpgrowth import fpgrowth
from repro.mining.reconstructing import mine_exact


class TestAgainstApriori:
    def test_identical_on_survey_data(self, survey_dataset):
        via_fp = fpgrowth(survey_dataset, 0.05)
        via_apriori = mine_exact(survey_dataset, 0.05)
        assert via_fp.frequent() == pytest.approx(via_apriori.frequent())

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.03, max_value=0.4),
    )
    @settings(max_examples=25, deadline=None)
    def test_identical_on_random_data(self, seed, min_support):
        """Property: two independent miners agree on every dataset."""
        rng = np.random.default_rng(seed)
        schema = Schema(
            [Attribute("a", "wxyz"), Attribute("b", "pq"), Attribute("c", "uvw")]
        )
        records = np.stack(
            [rng.integers(0, c, size=80) for c in schema.cardinalities], axis=1
        )
        dataset = CategoricalDataset(schema, records)
        via_fp = fpgrowth(dataset, min_support)
        via_apriori = mine_exact(dataset, min_support)
        assert via_fp.frequent() == pytest.approx(via_apriori.frequent())

    def test_identical_counts_on_census_sample(self):
        from repro.data.census import generate_census

        data = generate_census(8000, seed=3)
        assert (
            fpgrowth(data, 0.02).counts_by_length()
            == mine_exact(data, 0.02).counts_by_length()
        )


class TestBehaviour:
    def test_max_length(self, survey_dataset):
        capped = fpgrowth(survey_dataset, 0.05, max_length=2)
        assert capped.max_length <= 2

    def test_threshold_one_returns_nothing_or_constants(self, survey_dataset):
        result = fpgrowth(survey_dataset, 1.0)
        for level in result.by_length.values():
            for support in level.values():
                assert support == pytest.approx(1.0)

    def test_validation(self, survey_dataset, tiny_schema):
        with pytest.raises(MiningError):
            fpgrowth(survey_dataset, 0.0)
        empty = CategoricalDataset(tiny_schema, np.empty((0, 2), dtype=int))
        with pytest.raises(MiningError):
            fpgrowth(empty, 0.1)

    def test_levels_sorted(self, survey_dataset):
        result = fpgrowth(survey_dataset, 0.05)
        lengths = list(result.by_length)
        assert lengths == sorted(lengths)
