"""Tests for repro.experiments.reporting and the frapp CLI."""

import math

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.reporting import (
    render_figure_panels,
    render_schema_table,
    render_series_table,
)


class TestSeriesTable:
    def test_alignment_and_content(self):
        series = {"DET-GD": {1: 10.0, 2: 20.5}, "MASK": {1: 5.0, 2: 1e6}}
        text = render_series_table(series)
        lines = text.splitlines()
        assert lines[0].split() == ["length", "1", "2"]
        assert "DET-GD" in text and "MASK" in text
        assert "1.00e+06" in text

    def test_nan_rendered_as_dash(self):
        text = render_series_table({"a": {1: math.nan}})
        assert text.splitlines()[-1].endswith("-")

    def test_missing_column_rendered_as_dash(self):
        text = render_series_table({"a": {1: 1.0}, "b": {2: 2.0}})
        assert "-" in text.splitlines()[-1]

    def test_inf(self):
        text = render_series_table({"a": {1: float("inf")}})
        assert "inf" in text

    def test_float_columns(self):
        text = render_series_table({"a": {0.5: 1.0}}, x_label="alpha")
        assert "0.50" in text


class TestSchemaTable:
    def test_contents(self):
        text = render_schema_table([("age", ("(15-35]", "> 75"))])
        assert "age" in text and "(15-35]" in text


class TestFigurePanels:
    def test_panel_headers(self):
        panels = {"rho": {"DET-GD": {1: 1.0}}, "sigma_minus": {"DET-GD": {1: 0.0}}}
        text = render_figure_panels(panels)
        assert "[rho]" in text and "[sigma_minus]" in text


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig9"])

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "native-country" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "INCFAM20" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out and "Figure 4(b)" in out
        assert "112.1" in out

    def test_table3_quick(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "CENSUS (measured)" in out and "HEALTH (paper)" in out

    def test_fig1_quick(self, capsys):
        assert main(["fig1", "--records", "3000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "[rho]" in out and "DET-GD" in out

    def test_sweep_gamma_quick(self, capsys):
        assert main(["sweep-gamma", "--records", "3000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "vs gamma" in out and "sigma_minus" in out

    def test_fig3_quick(self, capsys):
        assert main(["fig3", "--records", "3000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out and "rho2_minus" in out


class TestCliCache:
    @pytest.fixture(autouse=True)
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        return tmp_path / "cache"

    def test_cold_then_warm_byte_identical(self, capsys):
        argv = ["fig1", "--records", "3000", "--seed", "1"]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "0 hit(s)" in cold.err and "4 mechanism run(s)" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out, "warm run must be byte-identical"
        assert "0 computed (0 mechanism run(s))" in warm.err

    def test_no_cache_bypasses_store(self, capsys, cache_dir):
        argv = ["table3", "--no-cache"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "store: disabled" in err
        assert not (cache_dir / "objects").exists()

    def test_force_recomputes(self, capsys):
        argv = ["table3"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--force"]) == 0
        assert "0 hit(s), 2 computed" in capsys.readouterr().err

    def test_cache_ls_rm_gc(self, capsys):
        assert main(["cache", "ls"]) == 0
        assert "empty" in capsys.readouterr().out
        assert main(["table3"]) == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "exact:CENSUS" in out and "exact:HEALTH" in out
        assert main(["cache", "gc"]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert main(["cache", "rm", "all"]) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_cache_rm_needs_operand(self):
        with pytest.raises(SystemExit):
            main(["cache", "rm"])

    def test_cache_unknown_op(self):
        with pytest.raises(SystemExit):
            main(["cache", "frobnicate"])

    def test_stray_operands_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig4", "stray"])

    def test_jobs_flag_parses(self, capsys):
        assert main(["table3", "--jobs", "2"]) == 0
        assert "2 computed" in capsys.readouterr().err


class TestGoldenStdout:
    """Byte-identical CLI output across the Mechanism-registry refactor.

    The fixtures under tests/data/ were captured from ``main`` *before*
    mechanisms were routed through the registry (same command lines);
    the four paper mechanisms must reproduce them byte for byte.
    """

    @pytest.mark.parametrize(
        "experiment, fixture",
        [("fig1", "golden_fig1.txt"), ("fig2", "golden_fig2.txt")],
    )
    def test_figures_byte_identical(self, capsys, experiment, fixture, monkeypatch):
        from pathlib import Path

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert (
            main([experiment, "--records", "4000", "--seed", "11", "--no-cache"]) == 0
        )
        out = capsys.readouterr().out
        golden = (Path(__file__).parent / "data" / fixture).read_text()
        assert out == golden


class TestPrivacyCommand:
    def test_paper_lineup(self, capsys):
        assert main(["privacy"]) == 0
        out = capsys.readouterr().out
        assert "Privacy accountant" in out
        assert "[CENSUS]" in out and "[HEALTH]" in out
        for name in ("DET-GD", "RAN-GD", "MASK", "C&P"):
            assert name in out
        # All four paper mechanisms admit the paper requirement.
        assert "NO" not in out
        assert "determinable breach" in out  # RAN-GD's posterior range

    def test_composite_spec_reports_product_bound(self, capsys):
        spec = (
            '{"name":"composite","params":{"parts":['
            '{"name":"det-gd","n_attributes":4,"params":{"gamma":19.0}},'
            '{"name":"warner","n_attributes":1,"params":{"p":0.95}},'
            '{"name":"warner","n_attributes":1,"params":{"p":0.95}}]}}'
        )
        assert main(["privacy", spec]) == 0
        out = capsys.readouterr().out
        assert "DET-GD+WARNER+WARNER" in out
        assert "product of 19 x 19 x 19" in out
        assert "6859" in out  # 19^3: gamma multiplies across attributes

    def test_rejects_malformed_spec(self):
        with pytest.raises(SystemExit):
            main(["privacy", "{not json"])

    def test_rejects_unknown_and_unbuildable_specs(self, capsys):
        with pytest.raises(SystemExit, match="unknown mechanism"):
            main(["privacy", '{"name":"nope","params":{}}'])
        with pytest.raises(SystemExit, match="not a mechanism spec"):
            main(["privacy", "[1, 2]"])
        with pytest.raises(SystemExit, match="single binary attribute"):
            main(["privacy", '{"name":"warner","params":{"p":0.9}}'])
        # Factory-signature mismatches (typoed / missing parameters)
        # exit cleanly too, not as raw TypeError tracebacks.
        with pytest.raises(SystemExit, match="unexpected keyword"):
            main(["privacy", '{"name":"det-gd","params":{"gama":19}}'])
        with pytest.raises(SystemExit, match="missing 1 required"):
            main(["privacy", '{"name":"additive-noise","params":{}}'])

    def test_options_may_follow_spec_operands(self, capsys):
        """Intermixed parsing: flags and JSON operands in either order."""
        spec = '{"name":"composite","params":{"parts":[' \
            '{"name":"det-gd","n_attributes":4,"params":{"gamma":19.0}},' \
            '{"name":"warner","n_attributes":1,"params":{"p":0.95}},' \
            '{"name":"warner","n_attributes":1,"params":{"p":0.95}}]}}'
        assert main(["privacy", "--gamma", "19", spec]) == 0
        assert "DET-GD+WARNER+WARNER" in capsys.readouterr().out

    def test_render_privacy_table_admits_column(self):
        from repro.core.privacy import PrivacyRequirement
        from repro.experiments.reporting import render_privacy_table
        from repro.mechanisms import PrivacyStatement

        statements = [
            PrivacyStatement(
                mechanism="DET-GD",
                spec={"name": "det-gd", "params": {"gamma": 19.0}},
                amplification=19.0,
                rho1=0.05,
                rho2=0.5,
            ),
            PrivacyStatement(
                mechanism="LEAKY",
                spec={"name": "leaky", "params": {}},
                amplification=float("inf"),
                rho1=0.05,
                rho2=1.0,
            ),
        ]
        text = render_privacy_table(
            statements, requirement=PrivacyRequirement(0.05, 0.50)
        )
        lines = text.splitlines()
        assert "admits" in lines[0]
        assert "cond" in lines[0]
        assert "yes" in text and "NO" in text
        # Unbounded amplification renders as the finite-width marker,
        # never as raw inf/nan (satellite: frapp privacy output hygiene).
        assert "unbounded" in text
        assert "inf" not in text and "nan" not in text

    def test_render_privacy_table_nan_bound_renders_dash(self):
        from repro.experiments.reporting import render_privacy_table
        from repro.mechanisms import PrivacyStatement

        statements = [
            PrivacyStatement(
                mechanism="ODD",
                spec={"name": "odd", "params": {}},
                amplification=float("nan"),
                rho1=0.05,
                rho2=float("nan"),
            ),
        ]
        text = render_privacy_table(statements)
        assert "nan" not in text and "inf" not in text

    def test_cli_additive_noise_prints_unbounded_marker(self, capsys):
        """`frapp privacy` on an unbounded mechanism never shows raw inf."""
        spec = '{"name":"additive-noise","params":{"scale":1.0}}'
        assert main(["privacy", spec]) == 0
        out = capsys.readouterr().out
        assert "ADD-NOISE" in out
        assert "unbounded" in out
        table = out.split("ADD-NOISE", 1)[1]
        assert "inf" not in table and "nan" not in table


class TestMechanismRowOrder:
    def test_order_mechanism_rows_uses_registry_metadata(self):
        from repro.experiments.reporting import order_mechanism_rows

        shuffled = {"MASK": 1, "DET-GD": 2, "C&P": 3, "RAN-GD": 4, "custom": 5}
        assert list(order_mechanism_rows(shuffled)) == [
            "DET-GD",
            "RAN-GD",
            "MASK",
            "C&P",
            "custom",
        ]


class TestPrivacyGammaTolerance:
    def test_cli_gamma_19_keeps_admits_column(self, capsys):
        """`--gamma 19` (the value the header displays) must produce the
        same admits column as the float-exact PAPER_GAMMA default."""
        assert main(["privacy"]) == 0
        default_out = capsys.readouterr().out
        assert main(["privacy", "--gamma", "19"]) == 0
        explicit_out = capsys.readouterr().out
        assert default_out == explicit_out
        assert "admits" in explicit_out


class TestUnifiedKnobs:
    """The shared execution-knob parent parser and its golden help."""

    def test_help_matches_golden(self, monkeypatch):
        import pathlib

        monkeypatch.setenv("COLUMNS", "80")
        golden = pathlib.Path(__file__).parent / "data" / "frapp_help.txt"
        assert build_parser().format_help() == golden.read_text(), (
            "frapp --help drifted; regenerate tests/data/frapp_help.txt with "
            "COLUMNS=80 python -c \"from repro.experiments.cli import "
            "build_parser; print(build_parser().format_help(), end='')\" "
            "if the change is intentional"
        )

    @pytest.mark.parametrize(
        ("alias", "value", "dest", "expected"),
        [
            ("--num-workers", "3", "workers", 3),
            ("--chunksize", "128", "chunk_size", 128),
            ("--counting-backend", "loops", "count_backend", "loops"),
            ("--dispatch-mode", "shm", "dispatch", "shm"),
            ("--n-jobs", "2", "jobs", 2),
        ],
    )
    def test_deprecated_aliases_warn_and_forward(
        self, alias, value, dest, expected
    ):
        # FutureWarning, not DeprecationWarning: the latter is ignored
        # by default, and these warnings target shell users.
        with pytest.warns(FutureWarning, match="deprecated"):
            args = build_parser().parse_args(["table1", alias, value])
        assert getattr(args, dest) == expected

    def test_aliases_hidden_from_help(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "80")
        text = build_parser().format_help()
        for alias in (
            "--num-workers",
            "--chunksize",
            "--counting-backend",
            "--dispatch-mode",
            "--n-jobs",
        ):
            assert alias not in text

    def test_canonical_spellings_still_parse(self):
        args = build_parser().parse_args(
            ["fig1", "--workers", "2", "--chunk-size", "64", "--jobs", "3"]
        )
        assert (args.workers, args.chunk_size, args.jobs) == (2, 64, 3)
