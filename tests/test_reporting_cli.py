"""Tests for repro.experiments.reporting and the frapp CLI."""

import math

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.reporting import (
    render_figure_panels,
    render_schema_table,
    render_series_table,
)


class TestSeriesTable:
    def test_alignment_and_content(self):
        series = {"DET-GD": {1: 10.0, 2: 20.5}, "MASK": {1: 5.0, 2: 1e6}}
        text = render_series_table(series)
        lines = text.splitlines()
        assert lines[0].split() == ["length", "1", "2"]
        assert "DET-GD" in text and "MASK" in text
        assert "1.00e+06" in text

    def test_nan_rendered_as_dash(self):
        text = render_series_table({"a": {1: math.nan}})
        assert text.splitlines()[-1].endswith("-")

    def test_missing_column_rendered_as_dash(self):
        text = render_series_table({"a": {1: 1.0}, "b": {2: 2.0}})
        assert "-" in text.splitlines()[-1]

    def test_inf(self):
        text = render_series_table({"a": {1: float("inf")}})
        assert "inf" in text

    def test_float_columns(self):
        text = render_series_table({"a": {0.5: 1.0}}, x_label="alpha")
        assert "0.50" in text


class TestSchemaTable:
    def test_contents(self):
        text = render_schema_table([("age", ("(15-35]", "> 75"))])
        assert "age" in text and "(15-35]" in text


class TestFigurePanels:
    def test_panel_headers(self):
        panels = {"rho": {"DET-GD": {1: 1.0}}, "sigma_minus": {"DET-GD": {1: 0.0}}}
        text = render_figure_panels(panels)
        assert "[rho]" in text and "[sigma_minus]" in text


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig9"])

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "native-country" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "INCFAM20" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out and "Figure 4(b)" in out
        assert "112.1" in out

    def test_table3_quick(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "CENSUS (measured)" in out and "HEALTH (paper)" in out

    def test_fig1_quick(self, capsys):
        assert main(["fig1", "--records", "3000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "[rho]" in out and "DET-GD" in out

    def test_sweep_gamma_quick(self, capsys):
        assert main(["sweep-gamma", "--records", "3000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "vs gamma" in out and "sigma_minus" in out

    def test_fig3_quick(self, capsys):
        assert main(["fig3", "--records", "3000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out and "rho2_minus" in out
