"""Tests for repro.mining.itemsets."""

import pytest

from repro.exceptions import MiningError
from repro.mining.itemsets import Itemset, all_items


class TestConstruction:
    def test_items_sorted_by_attribute(self):
        itemset = Itemset.of((2, 1), (0, 3))
        assert itemset.items == ((0, 3), (2, 1))

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(MiningError):
            Itemset.of((0, 1), (0, 2))

    def test_empty_rejected(self):
        with pytest.raises(MiningError):
            Itemset([])

    def test_hashable_and_equal(self):
        a = Itemset.of((1, 0), (2, 1))
        b = Itemset.of((2, 1), (1, 0))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ordering(self):
        assert Itemset.of((0, 0)) < Itemset.of((0, 1)) < Itemset.of((1, 0))


class TestStructure:
    def test_length_and_views(self):
        itemset = Itemset.of((0, 3), (2, 1), (4, 0))
        assert itemset.length == 3
        assert len(itemset) == 3
        assert itemset.attributes == (0, 2, 4)
        assert itemset.values == (3, 1, 0)

    def test_contains_and_iter(self):
        itemset = Itemset.of((0, 3), (2, 1))
        assert (0, 3) in itemset
        assert (0, 4) not in itemset
        assert list(itemset) == [(0, 3), (2, 1)]


class TestAlgebra:
    def test_union(self):
        a = Itemset.of((0, 1))
        b = Itemset.of((2, 0))
        assert a.union(b) == Itemset.of((0, 1), (2, 0))

    def test_union_conflict(self):
        with pytest.raises(MiningError):
            Itemset.of((0, 1)).union(Itemset.of((0, 2)))

    def test_union_overlap_consistent(self):
        a = Itemset.of((0, 1), (1, 0))
        b = Itemset.of((1, 0), (2, 2))
        assert a.union(b).length == 3

    def test_subsets_dropping_one(self):
        itemset = Itemset.of((0, 1), (1, 0), (2, 2))
        subsets = itemset.subsets_dropping_one()
        assert len(subsets) == 3
        assert all(s.length == 2 for s in subsets)
        assert Itemset.of((1, 0), (2, 2)) in subsets

    def test_singleton_has_no_proper_subsets(self):
        assert Itemset.of((0, 1)).subsets_dropping_one() == []

    def test_is_subset_of(self):
        small = Itemset.of((0, 1))
        big = Itemset.of((0, 1), (2, 0))
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)


class TestRendering:
    def test_label(self, tiny_schema):
        itemset = Itemset.of((0, 1), (1, 2))
        assert itemset.label(tiny_schema) == "color=blue & size=l"

    def test_boolean_positions(self, survey_schema):
        # Offsets: smokes 0..2, sex 3..4, income 5..6.
        itemset = Itemset.of((0, 2), (2, 1))
        assert itemset.boolean_positions(survey_schema) == (2, 6)


class TestAllItems:
    def test_count(self, survey_schema):
        items = all_items(survey_schema)
        assert len(items) == survey_schema.n_boolean == 7

    def test_all_singletons(self, survey_schema):
        assert all(i.length == 1 for i in all_items(survey_schema))

    def test_order(self, tiny_schema):
        items = all_items(tiny_schema)
        assert items[0] == Itemset.of((0, 0))
        assert items[-1] == Itemset.of((1, 2))
