"""Documentation and example integrity tests.

* Doctests embedded in public docstrings must stay correct.
* Every example script must run end-to-end (at reduced sizes).
* The repo-level documents must exist and reference real artefacts.
"""

import doctest
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

DOCTEST_MODULES = [
    "repro.stats.poisson_binomial",
    "repro.core.gamma_diagonal",
    "repro.data.schema",
    "repro.mining.itemsets",
    "repro.store.keys",
    "repro.experiments.orchestrator",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = __import__(module_name, fromlist=["_"])
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module_name} should carry doctest examples"
    assert result.failed == 0


_EXAMPLE_ARGS = {
    "quickstart.py": [],
    "mechanism_comparison.py": ["4000"],
    "privacy_accuracy_tradeoff.py": ["3000"],
    "custom_survey.py": [],
    "health_rules.py": ["6000"],
    "private_classifier.py": ["6000"],
    "continuous_reconstruction.py": [],
}


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(_EXAMPLE_ARGS), "keep _EXAMPLE_ARGS in sync"


@pytest.mark.parametrize("script", sorted(_EXAMPLE_ARGS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *_EXAMPLE_ARGS[script]],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their output"


def test_docstring_coverage_gate():
    """The lint-job gate: every public definition carries a docstring."""
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docstrings.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stdout[-2000:]


def test_pdoc_builds_cleanly(tmp_path):
    """The docs job's build, warnings-as-errors (skipped without pdoc)."""
    pytest.importorskip("pdoc")
    result = subprocess.run(
        [
            sys.executable,
            "-W",
            "error::UserWarning",
            "-m",
            "pdoc",
            "repro",
            "-o",
            str(tmp_path / "api"),
            "--docformat",
            "numpy",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert (tmp_path / "api" / "repro.html").is_file()


class TestRepoDocuments:
    def test_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO / name).is_file(), name

    def test_design_references_real_modules(self):
        text = (REPO / "DESIGN.md").read_text()
        for path in (
            "repro/core/gamma_diagonal.py",
            "repro/baselines/mask.py",
            "repro/mining/apriori.py",
        ):
            assert path in text
            assert (REPO / "src" / path).is_file()

    def test_experiments_covers_all_paper_artifacts(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ("Table 1", "Table 2", "Table 3", "Figure 1", "Figure 2",
                         "Figure 3", "Figure 4"):
            assert artifact in text

    def test_readme_quickstart_names_real_api(self):
        import repro

        text = (REPO / "README.md").read_text()
        for symbol in ("PrivacyRequirement", "DetGDMiner", "design_mechanism"):
            assert symbol in text
            assert hasattr(repro, symbol)
