"""Tests for repro.core.privacy (the (rho1, rho2) amplification model)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.privacy import (
    PrivacyRequirement,
    amplification,
    gamma_from_rho,
    rho2_from_gamma,
    satisfies_amplification,
    worst_case_posterior,
)
from repro.exceptions import MatrixError, PrivacyError

rho_pairs = st.tuples(
    st.floats(min_value=0.01, max_value=0.5),
    st.floats(min_value=0.51, max_value=0.99),
)


class TestGammaFromRho:
    def test_paper_example(self):
        """(5%, 50%) -> gamma = 19 (paper Section 7)."""
        assert gamma_from_rho(0.05, 0.50) == pytest.approx(19.0)

    def test_another_value(self):
        assert gamma_from_rho(0.10, 0.50) == pytest.approx(9.0)

    @given(rho_pairs)
    def test_always_above_one(self, pair):
        rho1, rho2 = pair
        assert gamma_from_rho(rho1, rho2) > 1.0

    @given(rho_pairs)
    def test_roundtrip_with_rho2_from_gamma(self, pair):
        rho1, rho2 = pair
        gamma = gamma_from_rho(rho1, rho2)
        assert rho2_from_gamma(rho1, gamma) == pytest.approx(rho2)

    def test_ordering_required(self):
        with pytest.raises(PrivacyError):
            gamma_from_rho(0.5, 0.5)
        with pytest.raises(PrivacyError):
            gamma_from_rho(0.6, 0.5)

    def test_open_interval_required(self):
        with pytest.raises(PrivacyError):
            gamma_from_rho(0.0, 0.5)
        with pytest.raises(PrivacyError):
            gamma_from_rho(0.05, 1.0)

    def test_rho2_from_gamma_validation(self):
        with pytest.raises(PrivacyError):
            rho2_from_gamma(0.05, 1.0)
        with pytest.raises(PrivacyError):
            rho2_from_gamma(1.5, 19.0)


class TestWorstCasePosterior:
    def test_paper_section41_example(self):
        """P(Q)=5%, gamma-diagonal with gamma=19: posterior = 50%."""
        # max_p/min_p = gamma; absolute scale cancels.
        assert worst_case_posterior(0.05, 19.0, 1.0) == pytest.approx(0.50)

    def test_no_information(self):
        assert worst_case_posterior(0.3, 1.0, 1.0) == pytest.approx(0.3)

    def test_extremes(self):
        assert worst_case_posterior(0.0, 2.0, 1.0) == 0.0
        assert worst_case_posterior(1.0, 2.0, 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(PrivacyError):
            worst_case_posterior(1.2, 1.0, 1.0)
        with pytest.raises(PrivacyError):
            worst_case_posterior(0.5, -1.0, 1.0)
        with pytest.raises(PrivacyError):
            worst_case_posterior(0.5, 0.0, 0.0)

    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=1.0, max_value=100.0),
    )
    def test_monotone_in_ratio(self, prior, ratio):
        low = worst_case_posterior(prior, 1.0, 1.0)
        high = worst_case_posterior(prior, ratio, 1.0)
        assert high >= low - 1e-12


class TestAmplification:
    def test_uniform_matrix(self):
        assert amplification(np.full((3, 3), 1 / 3)) == pytest.approx(1.0)

    def test_known_ratio(self):
        matrix = np.array([[0.6, 0.2], [0.4, 0.8]])
        assert amplification(matrix) == pytest.approx(3.0)

    def test_zero_rows_skipped(self):
        matrix = np.array([[1.0, 1.0], [0.0, 0.0]])
        assert amplification(matrix) == pytest.approx(1.0)

    def test_mixed_zero_is_infinite(self):
        matrix = np.array([[1.0, 0.5], [0.0, 0.5]])
        assert amplification(matrix) == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(MatrixError):
            amplification(np.array([[-0.1, 1.1], [1.1, -0.1]]))

    def test_satisfies_amplification(self):
        matrix = np.array([[0.6, 0.2], [0.4, 0.8]])
        assert satisfies_amplification(matrix, 3.0)
        assert not satisfies_amplification(matrix, 2.9)


class TestPrivacyRequirement:
    def test_paper_requirement(self):
        req = PrivacyRequirement(0.05, 0.50)
        assert req.gamma == pytest.approx(19.0)

    def test_invalid_rejected_at_construction(self):
        with pytest.raises(PrivacyError):
            PrivacyRequirement(0.5, 0.4)

    def test_admits(self):
        req = PrivacyRequirement(0.05, 0.50)
        ok = np.array([[0.6, 0.4], [0.4, 0.6]])
        assert req.admits(ok)
        leaky = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert not req.admits(leaky)
