"""Tests for repro.core.estimation (Theorem 1 and count variances)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import (
    expected_perturbed_counts,
    perturbed_count_variance,
    randomization_variance_split,
    relative_reconstruction_error,
    theorem1_bound,
    variance_eq10_form,
)
from repro.core.gamma_diagonal import GammaDiagonalMatrix
from repro.exceptions import ReconstructionError

row_and_counts = st.integers(min_value=2, max_value=20).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=n, max_size=n
        ),
        st.lists(st.integers(min_value=0, max_value=500), min_size=n, max_size=n),
    )
)


class TestExpectedCounts:
    def test_dense(self):
        matrix = np.array([[0.7, 0.3], [0.3, 0.7]])
        assert expected_perturbed_counts(matrix, [100, 0]) == pytest.approx([70, 30])

    def test_structured(self):
        matrix = GammaDiagonalMatrix(n=10, gamma=9.0)
        x = np.ones(10) * 10
        # Uniform input is a fixed point of any Markov matrix with
        # uniform column sums.
        assert expected_perturbed_counts(matrix, x) == pytest.approx(list(x))


class TestVariance:
    @given(row_and_counts)
    @settings(max_examples=80)
    def test_eq10_equals_bernoulli_form(self, row_counts):
        """Paper Eq. (10) is algebraically sum_u X_u A_vu (1 - A_vu)."""
        row, counts = row_counts
        direct = perturbed_count_variance(row, counts)
        eq10 = variance_eq10_form(row, counts)
        assert eq10 == pytest.approx(direct, abs=1e-6 * max(1.0, direct))

    def test_known_value(self):
        # 100 records at p=0.5: variance 25.
        assert perturbed_count_variance([0.5, 0.0], [100, 50]) == pytest.approx(25.0)

    def test_zero_for_deterministic_rows(self):
        assert perturbed_count_variance([1.0, 0.0], [10, 20]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ReconstructionError):
            perturbed_count_variance([0.5], [1, 2])

    def test_empirical_variance_matches(self, rng):
        """Monte-Carlo check of Var(Y_v) on a real perturbation."""
        matrix = GammaDiagonalMatrix(n=6, gamma=4.0)
        x = np.array([50, 10, 0, 0, 30, 10])
        row = np.full(6, matrix.x)
        row[0] = matrix.diagonal  # the row of perturbed value v=0
        predicted = perturbed_count_variance(row, x)
        originals = np.repeat(np.arange(6), x)
        samples = []
        for _ in range(3000):
            keep = rng.random(originals.size) < matrix.keep_probability
            out = np.where(keep, originals, rng.integers(0, 6, size=originals.size))
            samples.append(np.sum(out == 0))
        assert np.var(samples) == pytest.approx(predicted, rel=0.15)


class TestTheorem1:
    def test_bound_formula(self):
        bound = theorem1_bound(10.0, observed=[11.0, 0.0], expected=[10.0, 0.0])
        assert bound == pytest.approx(10.0 * 1.0 / 10.0)

    def test_zero_expected_rejected(self):
        with pytest.raises(ReconstructionError):
            theorem1_bound(1.0, [1.0], [0.0])

    def test_bound_holds_for_gamma_diagonal_reconstruction(self, rng):
        """Observed relative error never exceeds the Theorem-1 bound."""
        matrix = GammaDiagonalMatrix(n=8, gamma=6.0)
        x = rng.uniform(50, 150, size=8)
        expected_y = matrix.matvec(x)
        for _ in range(25):
            y = expected_y + rng.normal(0, 3.0, size=8)
            estimate = matrix.solve(y)
            lhs = relative_reconstruction_error(estimate, x)
            rhs = theorem1_bound(matrix.condition_number(), y, expected_y)
            assert lhs <= rhs + 1e-9

    def test_relative_error_zero_for_exact(self):
        assert relative_reconstruction_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_relative_error_zero_truth_rejected(self):
        with pytest.raises(ReconstructionError):
            relative_reconstruction_error([1.0], [0.0])


class TestRandomizationSplit:
    def test_triangle_inequality(self, rng):
        for _ in range(20):
            observed = rng.normal(size=5)
            realized = rng.normal(size=5)
            design = rng.normal(size=5)
            total, fluctuation, bias = randomization_variance_split(
                observed, realized, design
            )
            assert total <= fluctuation + bias + 1e-12

    def test_deterministic_case_has_zero_bias(self):
        y = np.array([1.0, 2.0])
        total, fluctuation, bias = randomization_variance_split(y, y + 1, y + 1)
        assert bias == 0.0
        assert total == pytest.approx(fluctuation)
