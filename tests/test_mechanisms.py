"""Tests for repro.mechanisms: protocol, registry, composition, accountant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.privacy import PrivacyRequirement, amplification, rho2_from_gamma
from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import (
    DataError,
    ExperimentError,
    MatrixError,
    UnknownMechanismError,
)
from repro.mechanisms import (
    CompositeMechanism,
    MechanismSpec,
    PrivacyAccountant,
    available,
    create,
    display_name,
    display_order,
    from_spec,
    get,
    paper_mechanisms,
    register,
    unregister,
)
from repro.mining.itemsets import Itemset, all_items
from repro.pipeline import PerturbationPipeline


def _schema(*cards):
    return Schema(
        [
            Attribute(f"a{i}", [f"c{i}{j}" for j in range(card)])
            for i, card in enumerate(cards)
        ]
    )


def _composite(schema, part_specs):
    return CompositeMechanism.build(schema, part_specs)


@pytest.fixture
def mixed_schema():
    """Binary sensitive column + a 3x4 block, joint size 24."""
    return _schema(2, 3, 4)


@pytest.fixture
def warner_det_composite(mixed_schema):
    """Warner on the binary column, DET-GD over the remaining block."""
    return _composite(
        mixed_schema,
        [
            {"name": "warner", "n_attributes": 1, "params": {"p": 0.8}},
            {"name": "det-gd", "n_attributes": 2, "params": {"gamma": 7.0}},
        ],
    )


class TestRegistry:
    def test_builtins_available(self):
        keys = available()
        for key in ("det-gd", "ran-gd", "mask", "c&p", "warner", "additive-noise",
                    "composite"):
            assert key in keys

    def test_paper_lineup_from_metadata(self):
        assert paper_mechanisms() == ("DET-GD", "RAN-GD", "MASK", "C&P")

    def test_aliases_and_display_names_resolve(self):
        assert get("cut-and-paste").key == "c&p"
        assert get("CP").key == "c&p"
        assert get("DET-GD").key == "det-gd"
        assert get("det_gd").key == "det-gd"
        assert display_name("ran-gd") == "RAN-GD"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownMechanismError) as excinfo:
            get("dp-laplace")
        message = str(excinfo.value)
        assert "dp-laplace" in message and "det-gd" in message
        # The unified error is catchable under both historical types.
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, ExperimentError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):
            register("det-gd", lambda schema: None)

    def test_register_unregister_custom(self, mixed_schema):
        entry = register(
            "test-identity",
            lambda schema, gamma=2.0: create("det-gd", schema, gamma=gamma),
            display="TEST-ID",
        )
        try:
            assert entry.key in available()
            mechanism = create("test-identity", mixed_schema, gamma=3.0)
            assert mechanism.amplification() == 3.0
        finally:
            unregister("test-identity")
        assert "test-identity" not in available()

    def test_display_order_ranks_paper_first(self):
        ordered = display_order(["WARNER", "C&P", "DET-GD", "unknown-thing"])
        assert ordered == ["DET-GD", "C&P", "WARNER", "unknown-thing"]


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "name, params",
        [
            ("det-gd", {"gamma": 19.0}),
            ("ran-gd", {"gamma": 19.0, "relative_alpha": 0.5}),
            ("mask", {"gamma": 19.0}),
            ("c&p", {"gamma": 19.0, "max_cut": 3}),
            ("additive-noise", {"scale": 1.5}),
        ],
    )
    def test_builtin_round_trip(self, mixed_schema, name, params):
        mechanism = create(name, mixed_schema, **params)
        spec = mechanism.spec()
        rebuilt = from_spec(spec, mixed_schema)
        assert rebuilt.spec() == spec
        assert rebuilt.display == mechanism.display

    def test_warner_round_trip(self):
        schema = _schema(2)
        mechanism = create("warner", schema, p=0.8)
        assert from_spec(mechanism.spec(), schema).spec() == mechanism.spec()

    def test_ran_gd_round_trip_inexact_relative_alpha(self, mixed_schema):
        """relative_alpha values that are inexact in binary (0.3) must
        round-trip without float drift: the spec echoes the constructor
        parameter instead of recomputing it from the realised alpha."""
        mechanism = create("ran-gd", mixed_schema, gamma=19.0, relative_alpha=0.3)
        spec = mechanism.spec()
        assert dict(spec.as_params())["relative_alpha"] == 0.3
        rebuilt = from_spec(spec, mixed_schema)
        assert rebuilt.spec() == spec
        assert rebuilt.alpha == mechanism.alpha

    def test_composite_round_trip(self, warner_det_composite, mixed_schema):
        spec = warner_det_composite.spec()
        rebuilt = from_spec(spec, mixed_schema)
        assert rebuilt.spec() == spec
        assert rebuilt.display == "WARNER+DET-GD"

    def test_spec_canonical_dict_round_trip(self, warner_det_composite):
        spec = warner_det_composite.spec()
        assert MechanismSpec.from_dict(spec.canonical()) == spec

    def test_specs_are_hashable_and_comparable(self):
        a = MechanismSpec("det-gd", {"gamma": 19.0})
        b = MechanismSpec("det-gd", {"gamma": 19.0})
        c = MechanismSpec("det-gd", {"gamma": 9.0})
        assert a == b and hash(a) == hash(b) and a != c


class TestCompositeStructure:
    def test_parts_must_partition_schema(self, mixed_schema):
        with pytest.raises(ExperimentError):
            _composite(
                mixed_schema,
                [{"name": "warner", "n_attributes": 1, "params": {"p": 0.8}}],
            )

    def test_non_columnar_part_rejected(self, mixed_schema):
        mask = create("mask", mixed_schema, gamma=19.0)
        with pytest.raises(ExperimentError):
            CompositeMechanism(mixed_schema, [mask])

    def test_warner_needs_binary_column(self):
        with pytest.raises(DataError):
            create("warner", _schema(3), p=0.8)

    def test_warner_needs_feasible_p(self):
        with pytest.raises(MatrixError):
            create("warner", _schema(2), p=0.4)

    @settings(max_examples=25, deadline=None)
    @given(
        cards=st.lists(st.integers(min_value=2, max_value=4), min_size=2, max_size=4),
        data=st.data(),
    )
    def test_joint_matrix_is_kron_of_parts(self, cards, data):
        """The composite's effective joint matrix equals the Kronecker
        product of its per-attribute matrices (paper Section 5's product
        form), for arbitrary small domains and per-part parameters."""
        schema = _schema(*cards)
        part_specs = []
        for i, card in enumerate(cards):
            if card == 2 and data.draw(st.booleans(), label=f"warner{i}"):
                p = data.draw(
                    st.floats(min_value=0.6, max_value=0.95), label=f"p{i}"
                )
                part_specs.append(
                    {"name": "warner", "n_attributes": 1, "params": {"p": p}}
                )
            else:
                gamma = data.draw(
                    st.floats(min_value=1.5, max_value=50.0), label=f"gamma{i}"
                )
                part_specs.append(
                    {"name": "det-gd", "n_attributes": 1, "params": {"gamma": gamma}}
                )
        composite = _composite(schema, part_specs)
        expected = composite.parts[0].matrix()
        for part in composite.parts[1:]:
            expected = np.kron(expected, part.matrix())
        # matrix() is an implicit operator; to_dense() recovers the
        # np.kron fold bit for bit.
        dense = composite.matrix().to_dense()
        assert np.allclose(dense, expected, atol=1e-12)
        # Markov sanity and the product amplification bound.
        assert np.allclose(dense.sum(axis=0), 1.0)
        product = 1.0
        for part in composite.parts:
            product *= part.amplification()
        assert composite.amplification() == pytest.approx(product)
        assert amplification(dense) == pytest.approx(product)

    def test_grouped_parts_kron(self, warner_det_composite):
        """Multi-attribute parts compose the same way: Warner (2) x
        DET-GD over the 3x4 block (joint 12)."""
        warner, det = warner_det_composite.parts
        expected = np.kron(warner.matrix(), det.matrix())
        assert np.allclose(warner_det_composite.matrix().to_dense(), expected)
        assert warner_det_composite.marginal_matrix((0, 1, 2)).shape == (24, 24)
        assert np.allclose(
            warner_det_composite.marginal_matrix((0, 1, 2)).to_dense(), expected
        )

    def test_marginal_matrix_cross_group(self, warner_det_composite):
        """A subset spanning both groups is the Kron of each part's
        induced marginal over its share."""
        warner, det = warner_det_composite.parts
        cross = warner_det_composite.marginal_matrix((0, 2))
        expected = np.kron(warner.matrix(), det.marginal_matrix([1]))
        assert np.allclose(cross.to_dense(), expected)

    def test_marginal_positions_validated(self, warner_det_composite):
        with pytest.raises(ExperimentError):
            warner_det_composite.marginal_matrix(())
        with pytest.raises(ExperimentError):
            warner_det_composite.marginal_matrix((2, 0))
        with pytest.raises(ExperimentError):
            warner_det_composite.marginal_matrix((0, 7))


class TestCompositeSampler:
    def test_sampler_realises_kron_matrix(self, mixed_schema, warner_det_composite):
        """Empirical transition frequencies from one fixed origin match
        the analytic Kronecker column."""
        origin = np.array([[1, 2, 3]])
        records = np.repeat(origin, 120_000, axis=0)
        dataset = CategoricalDataset(mixed_schema, records)
        perturbed = warner_det_composite.perturb(dataset, seed=42)
        joint = mixed_schema.encode(perturbed.records)
        empirical = np.bincount(joint, minlength=mixed_schema.joint_size) / len(joint)
        column = warner_det_composite.matrix().to_dense()[
            :, mixed_schema.encode(origin)[0]
        ]
        assert np.abs(empirical - column).max() < 0.005

    def test_chunk_splittable(self, mixed_schema, warner_det_composite, rng):
        records = np.stack(
            [rng.integers(0, c, 3000) for c in mixed_schema.cardinalities], axis=1
        )
        one_shot = warner_det_composite.perturb_chunk(
            records, np.random.default_rng(7)
        )
        threaded = np.random.default_rng(7)
        parts = [
            warner_det_composite.perturb_chunk(records[:1100], threaded),
            warner_det_composite.perturb_chunk(records[1100:], threaded),
        ]
        assert np.array_equal(one_shot, np.concatenate(parts))

    def test_joint_and_records_paths_agree(self, mixed_schema, warner_det_composite, rng):
        records = np.stack(
            [rng.integers(0, c, 2000) for c in mixed_schema.cardinalities], axis=1
        )
        joint = mixed_schema.encode(records)
        via_records = mixed_schema.encode(
            warner_det_composite.perturb_chunk(records, np.random.default_rng(3))
        )
        via_joint = warner_det_composite.perturb_joint(
            joint, np.random.default_rng(3)
        )
        assert np.array_equal(via_records, via_joint)

    def test_compact_dtype_preserved(self, mixed_schema, warner_det_composite):
        records = np.zeros((100, 3), dtype=np.uint8)
        out = warner_det_composite.perturb_chunk(records, np.random.default_rng(0))
        assert out.dtype == np.uint8

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("dispatch", ["pickle", "shm"])
    def test_pipeline_bit_identity(
        self, mixed_schema, warner_det_composite, rng, workers, dispatch
    ):
        """Accumulated composite counts are invariant across worker
        counts and dispatch modes under spawn seeding -- the pipeline
        contract extended to composites."""
        records = np.stack(
            [rng.integers(0, c, 12_000) for c in mixed_schema.cardinalities], axis=1
        )
        dataset = CategoricalDataset(mixed_schema, records)
        reference = PerturbationPipeline(
            warner_det_composite, chunk_size=1024, workers=1, seeding="spawn"
        ).accumulate(dataset, seed=99)
        run = PerturbationPipeline(
            warner_det_composite,
            chunk_size=1024,
            workers=workers,
            seeding="spawn",
            dispatch=dispatch,
        ).accumulate(dataset, seed=99)
        assert np.array_equal(reference.counts, run.counts)


class TestCompositeEstimation:
    def test_reconstruction_recovers_supports(self, mixed_schema, rng):
        """High-gamma composite reconstruction converges to the truth."""
        composite = _composite(
            mixed_schema,
            [
                {"name": "warner", "n_attributes": 1, "params": {"p": 0.99}},
                {"name": "det-gd", "n_attributes": 2, "params": {"gamma": 1e5}},
            ],
        )
        records = np.stack(
            [rng.integers(0, c, 5000) for c in mixed_schema.cardinalities], axis=1
        )
        dataset = CategoricalDataset(mixed_schema, records)
        estimator = composite.build_estimator(dataset, seed=5)
        itemsets = all_items(mixed_schema)
        from repro.mining.counting import ExactSupportCounter

        truth = ExactSupportCounter(dataset).supports(itemsets)
        estimated = estimator.supports(itemsets)
        assert np.abs(estimated - truth).max() < 0.02

    def test_single_part_matches_eq28_closed_form(self, survey_schema, survey_dataset):
        """A one-part DET-GD composite's marginal-inversion estimates
        agree with the Eq.-28 closed form on the same perturbed data."""
        from repro.mining.counting import GammaDiagonalSupportEstimator

        composite = _composite(
            survey_schema,
            [{"name": "det-gd", "n_attributes": 3, "params": {"gamma": 19.0}}],
        )
        perturbed = composite.perturb(survey_dataset, seed=11)
        itemsets = all_items(survey_schema) + [
            Itemset.of((0, 1), (1, 0)),
            Itemset.of((0, 0), (1, 1), (2, 1)),
        ]
        closed_form = GammaDiagonalSupportEstimator(perturbed, 19.0).supports(itemsets)
        inverted = composite.build_estimator(
            survey_dataset, seed=11
        ).supports(itemsets)
        assert np.allclose(inverted, closed_form, atol=1e-9)

    def test_pipeline_estimator_matches_direct(self, mixed_schema, warner_det_composite, rng):
        records = np.stack(
            [rng.integers(0, c, 6000) for c in mixed_schema.cardinalities], axis=1
        )
        dataset = CategoricalDataset(mixed_schema, records)
        itemsets = all_items(mixed_schema)
        chunked = warner_det_composite.build_estimator(
            dataset, seed=21, workers=1, chunk_size=512
        ).supports(itemsets)
        direct = warner_det_composite.build_estimator(dataset, seed=21).supports(
            itemsets
        )
        # workers=1 chunked threads one stream (sequential seeding), so
        # estimates are bit-identical to the one-shot path.
        assert np.array_equal(chunked, direct)


class TestEndToEnd:
    def test_run_mechanism_with_composite_spec(self, mixed_schema, rng):
        """Perturb, reconstruct and mine a composite through the
        experiment runner -- identically across execution layouts."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_mechanism

        records = np.stack(
            [rng.integers(0, c, 8000) for c in mixed_schema.cardinalities], axis=1
        )
        dataset = CategoricalDataset(mixed_schema, records)
        spec = MechanismSpec(
            "composite",
            {
                "parts": [
                    {"name": "warner", "n_attributes": 1, "params": {"p": 0.9}},
                    {"name": "det-gd", "n_attributes": 2, "params": {"gamma": 19.0}},
                ]
            },
        )
        runs = []
        for workers, dispatch in ((1, "pickle"), (4, "pickle"), (4, "shm")):
            config = ExperimentConfig(
                min_support=0.05,
                workers=workers,
                chunk_size=1024,
                dispatch=dispatch,
                protocol="apriori",
            )
            runs.append(run_mechanism(dataset, spec, config, seed=3))
        assert runs[0].mechanism == "WARNER+DET-GD"
        # Multi-worker layouts (pickle vs shm) are bit-identical to each
        # other; see the pipeline determinism contract.
        assert runs[1].result.by_length == runs[2].result.by_length
        for run in runs:
            assert run.result.n_frequent > 0

    def test_mechanism_miner_via_make_miner(self, survey_schema, survey_dataset):
        from repro.mining.reconstructing import make_miner

        miner = make_miner("warner", _schema(2), 4.0)
        assert miner.name == "WARNER"
        noise_miner = make_miner("additive-noise", survey_schema, 2.0, scale=99)

    def test_make_miner_kwargs_override(self, survey_schema):
        """Non-shim mechanisms receive gamma positionally and kwargs."""
        from repro.mining.reconstructing import make_miner

        with pytest.raises(TypeError):
            make_miner("additive-noise", survey_schema, 2.0, scale=1.0, bogus=1)

    def test_pipeline_rejected_for_boolean_mechanisms(self, survey_schema, survey_dataset):
        from repro.mining.reconstructing import make_miner

        miner = make_miner("mask", survey_schema, 19.0)
        with pytest.raises(ExperimentError):
            miner.mine(survey_dataset, 0.1, seed=0, workers=4)


class TestAccountant:
    def test_det_gd_statement(self, mixed_schema):
        accountant = PrivacyAccountant(rho1=0.05)
        statement = accountant.statement(create("det-gd", mixed_schema, gamma=19.0))
        assert statement.amplification == pytest.approx(19.0)
        assert statement.rho2 == pytest.approx(rho2_from_gamma(0.05, 19.0))
        assert statement.rho2 == pytest.approx(0.5)
        assert statement.factors is None
        assert statement.admits(PrivacyRequirement(0.05, 0.50))
        assert not statement.admits(PrivacyRequirement(0.05, 0.30))

    def test_ran_gd_posterior_range(self, mixed_schema):
        accountant = PrivacyAccountant(rho1=0.05)
        mechanism = create("ran-gd", mixed_schema, gamma=19.0, relative_alpha=0.5)
        statement = accountant.statement(mechanism)
        lo, mid, hi = statement.posterior_range
        assert lo < mid < hi
        assert mid == pytest.approx(0.5, abs=1e-9)
        assert statement.amplification == pytest.approx(19.0)
        assert mechanism.realized_amplification() > 19.0

    def test_mask_and_cp_bounds_are_tight(self, mixed_schema):
        accountant = PrivacyAccountant(rho1=0.05)
        for name in ("mask", "c&p"):
            statement = accountant.statement(create(name, mixed_schema, gamma=19.0))
            assert statement.amplification <= 19.0 * (1 + 1e-6)

    def test_composite_product_bound(self, warner_det_composite):
        accountant = PrivacyAccountant(rho1=0.05)
        statement = accountant.statement(warner_det_composite)
        assert statement.factors == pytest.approx((4.0, 7.0))
        assert statement.amplification == pytest.approx(28.0)

    def test_additive_noise_unbounded(self, mixed_schema):
        accountant = PrivacyAccountant(rho1=0.05)
        statement = accountant.statement(
            create("additive-noise", mixed_schema, scale=1.0)
        )
        assert statement.amplification == float("inf")
        assert statement.rho2 == 1.0

    def test_audit_within_bound(self, warner_det_composite, mixed_schema, rng):
        accountant = PrivacyAccountant(rho1=0.05)
        prior = rng.dirichlet(np.ones(mixed_schema.joint_size))
        audits = accountant.audit(warner_det_composite, prior)
        assert audits and all(audit.within_bound for audit in audits)

    def test_audit_rejects_unbounded(self, mixed_schema):
        from repro.exceptions import PrivacyError

        accountant = PrivacyAccountant(rho1=0.05)
        noise = create("additive-noise", mixed_schema, scale=0.6)
        with pytest.raises(PrivacyError):
            accountant.audit(noise, np.full(24, 1 / 24))

    def test_matrixless_mechanism_audit_rejected(self, mixed_schema):
        from repro.exceptions import PrivacyError

        accountant = PrivacyAccountant(rho1=0.05)
        with pytest.raises(PrivacyError):
            accountant.audit(
                create("mask", mixed_schema, gamma=19.0), np.full(24, 1 / 24)
            )


class TestUnifiedErrors:
    def test_make_miner_unknown(self, survey_schema):
        from repro.mining.reconstructing import make_miner

        with pytest.raises(UnknownMechanismError) as excinfo:
            make_miner("dp", survey_schema, 19.0)
        assert "registered mechanisms" in str(excinfo.value)

    def test_runner_unknown(self, survey_dataset):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_mechanism

        with pytest.raises(UnknownMechanismError):
            run_mechanism(survey_dataset, "nope", ExperimentConfig(min_support=0.1))


class TestRunnerConfigForwarding:
    """Regression: config knobs are forwarded only where accepted."""

    def test_run_mechanism_with_parameterless_registered_name(self):
        """Mechanisms without a count_backend (warner) run by name."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_mechanism

        rng = np.random.default_rng(0)
        schema = _schema(2)
        dataset = CategoricalDataset(
            schema, rng.integers(0, 2, size=(4000, 1)).astype(np.int64)
        )
        run = run_mechanism(
            dataset,
            "warner",
            ExperimentConfig(gamma=9.0, min_support=0.05, protocol="apriori"),
            seed=1,
        )
        assert run.mechanism == "WARNER"
        assert run.result.n_frequent >= 1

    def test_registered_class_without_pipeline_flag_inherits_capability(self):
        """Registry metadata cannot disagree with the mechanism class:
        registering a ColumnarMechanism subclass without pipeline=
        derives pipeline capability from supports_pipeline."""
        from repro.mechanisms.builtin import GammaDiagonalMechanism
        from repro.mechanisms.registry import get as get_entry

        class Derived(GammaDiagonalMechanism):
            key = "test-derived"
            display = "TEST-DERIVED"

        entry = register("test-derived", Derived)
        try:
            assert entry.pipeline is True
            lambda_entry = register(
                "test-derived-lambda", lambda schema, gamma: Derived(schema, gamma)
            )
            assert lambda_entry.pipeline is False
        finally:
            unregister("test-derived")
            unregister("test-derived-lambda")

    def test_spec_cell_pipeline_signature_matches_execution(self):
        """Spec-built composite cells key on the chunk layout when
        workers > 1 (the registry knows composites are pipeline-capable)."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.orchestrator import (
            DatasetSpec,
            exact_cell,
            mechanism_cell,
            int_seed,
            Orchestrator,
        )

        spec = MechanismSpec(
            "composite",
            {
                "parts": [
                    {"name": "det-gd", "n_attributes": 4, "params": {"gamma": 19.0}},
                    {"name": "warner", "n_attributes": 1, "params": {"p": 0.9}},
                    {"name": "warner", "n_attributes": 1, "params": {"p": 0.9}},
                ]
            },
        )
        dataset = DatasetSpec.from_name("CENSUS", n_records=2000)
        exact = exact_cell(dataset, 0.02)
        orch = Orchestrator(store=None, fingerprint="fp")
        chunked = mechanism_cell(
            dataset,
            spec,
            ExperimentConfig(seed=3, workers=4, chunk_size=256),
            int_seed(1),
            exact,
        )
        other_chunk = mechanism_cell(
            dataset,
            spec,
            ExperimentConfig(seed=3, workers=4, chunk_size=512),
            int_seed(1),
            exact,
        )
        assert chunked.params["pipeline"] == {"seeding": "spawn", "chunk_size": 256}
        assert orch.key_for(chunked) != orch.key_for(other_chunk)
