"""Tests for repro.data.schema."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Attribute, Schema
from repro.exceptions import SchemaError


def schema_strategy(max_attrs=4, max_card=5):
    cards = st.lists(
        st.integers(min_value=2, max_value=max_card), min_size=1, max_size=max_attrs
    )
    return cards.map(
        lambda cs: Schema(
            Attribute(f"a{i}", [f"c{j}" for j in range(c)]) for i, c in enumerate(cs)
        )
    )


class TestAttribute:
    def test_basic(self):
        attr = Attribute("sex", ["F", "M"])
        assert attr.cardinality == 2
        assert attr.index_of("M") == 1

    def test_unknown_label(self):
        with pytest.raises(SchemaError):
            Attribute("sex", ["F", "M"]).index_of("X")

    def test_needs_two_categories(self):
        with pytest.raises(SchemaError):
            Attribute("x", ["only"])

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Attribute("x", ["a", "a"])

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("", ["a", "b"])

    def test_labels_coerced_to_str(self):
        attr = Attribute("bins", [0, 1, 2])
        assert attr.categories == ("0", "1", "2")


class TestSchemaBasics:
    def test_shape_properties(self, survey_schema):
        assert survey_schema.n_attributes == 3
        assert survey_schema.cardinalities == (3, 2, 2)
        assert survey_schema.joint_size == 12
        assert survey_schema.n_boolean == 7

    def test_names_and_lookup(self, survey_schema):
        assert survey_schema.names == ("smokes", "sex", "income")
        assert survey_schema.position_of("income") == 2
        assert survey_schema["sex"].cardinality == 2
        assert survey_schema[0].name == "smokes"

    def test_unknown_name(self, survey_schema):
        with pytest.raises(SchemaError):
            survey_schema.position_of("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a", "xy"), Attribute("a", "xy")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_prefix_products(self, survey_schema):
        assert survey_schema.prefix_products() == (3, 6, 12)

    def test_boolean_offsets(self, survey_schema):
        assert survey_schema.boolean_offsets() == (0, 3, 5)

    def test_subset_size(self, survey_schema):
        assert survey_schema.subset_size([0, 2]) == 6
        assert survey_schema.subset_size([1]) == 2

    def test_subset_size_validation(self, survey_schema):
        with pytest.raises(SchemaError):
            survey_schema.subset_size([0, 0])
        with pytest.raises(SchemaError):
            survey_schema.subset_size([5])

    def test_iteration(self, survey_schema):
        assert [a.name for a in survey_schema] == ["smokes", "sex", "income"]
        assert len(survey_schema) == 3

    def test_describe_mentions_all_attributes(self, survey_schema):
        text = survey_schema.describe()
        for name in survey_schema.names:
            assert name in text

    def test_equality(self):
        a = Schema([Attribute("x", "ab")])
        b = Schema([Attribute("x", "ab")])
        assert a == b


class TestEncoding:
    def test_known_values(self, tiny_schema):
        # Mixed radix, attribute 0 most significant: (1, 2) -> 1*3+2 = 5.
        assert tiny_schema.encode([[1, 2]]).tolist() == [5]
        assert tiny_schema.encode([[0, 0]]).tolist() == [0]

    def test_decode_known(self, tiny_schema):
        assert tiny_schema.decode([5]).tolist() == [[1, 2]]

    @given(schema_strategy(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60)
    def test_roundtrip(self, schema, seed):
        rng = np.random.default_rng(seed)
        records = np.stack(
            [rng.integers(0, c, size=20) for c in schema.cardinalities], axis=1
        )
        joint = schema.encode(records)
        assert np.all(joint >= 0) and np.all(joint < schema.joint_size)
        assert np.array_equal(schema.decode(joint), records)

    def test_encode_shape_validation(self, tiny_schema):
        with pytest.raises(SchemaError):
            tiny_schema.encode([[0, 0, 0]])
        with pytest.raises(SchemaError):
            tiny_schema.encode([0, 1])

    def test_decode_range_validation(self, tiny_schema):
        with pytest.raises(SchemaError):
            tiny_schema.decode([6])
        with pytest.raises(SchemaError):
            tiny_schema.decode([-1])

    def test_subset_roundtrip(self, survey_schema, rng):
        records = np.stack(
            [rng.integers(0, c, size=50) for c in survey_schema.cardinalities], axis=1
        )
        positions = (0, 2)
        joint = survey_schema.encode_subset(records, positions)
        assert joint.max() < survey_schema.subset_size(positions)
        decoded = survey_schema.decode_subset(joint, positions)
        assert np.array_equal(decoded, records[:, list(positions)])

    def test_subset_encode_empty_rejected(self, survey_schema):
        with pytest.raises(SchemaError):
            survey_schema.encode_subset(np.zeros((1, 3), dtype=int), [])

    def test_subset_consistency_with_full(self, survey_schema, rng):
        """Encoding the full attribute list equals the plain encoding."""
        records = np.stack(
            [rng.integers(0, c, size=30) for c in survey_schema.cardinalities], axis=1
        )
        full = survey_schema.encode(records)
        subset = survey_schema.encode_subset(records, range(survey_schema.n_attributes))
        assert np.array_equal(full, subset)
