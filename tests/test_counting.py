"""Tests for repro.mining.counting (support sources / estimators)."""

import numpy as np
import pytest

from repro.baselines.cut_and_paste import CutAndPastePerturbation
from repro.baselines.mask import MaskPerturbation
from repro.core.engine import GammaDiagonalPerturbation
from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError, MiningError
from repro.mining.counting import (
    CutAndPasteSupportEstimator,
    ExactSupportCounter,
    GammaDiagonalSupportEstimator,
    MaskSupportEstimator,
)
from repro.mining.itemsets import Itemset, all_items


class TestExactCounter:
    def test_singleton_supports(self, tiny_dataset):
        counter = ExactSupportCounter(tiny_dataset)
        supports = counter.supports([Itemset.of((0, 0)), Itemset.of((0, 1))])
        assert supports.tolist() == [5 / 8, 3 / 8]

    def test_pair_supports(self, tiny_dataset):
        counter = ExactSupportCounter(tiny_dataset)
        supports = counter.supports([Itemset.of((0, 0), (1, 1))])
        assert supports[0] == pytest.approx(3 / 8)

    def test_all_items_sum_per_attribute(self, survey_dataset):
        """Supports of an attribute's singletons sum to one."""
        counter = ExactSupportCounter(survey_dataset)
        items = all_items(survey_dataset.schema)
        supports = counter.supports(items)
        by_attr = {}
        for item, s in zip(items, supports):
            by_attr.setdefault(item.attributes[0], []).append(s)
        for values in by_attr.values():
            assert sum(values) == pytest.approx(1.0)

    def test_matches_naive_masking(self, survey_dataset, rng):
        counter = ExactSupportCounter(survey_dataset)
        itemset = Itemset.of((0, 1), (2, 0))
        expected = np.mean(
            (survey_dataset.column(0) == 1) & (survey_dataset.column(2) == 0)
        )
        assert counter.supports([itemset])[0] == pytest.approx(expected)

    def test_empty_dataset_rejected(self, tiny_schema):
        empty = CategoricalDataset(tiny_schema, np.empty((0, 2), dtype=int))
        with pytest.raises(MiningError):
            ExactSupportCounter(empty).supports([Itemset.of((0, 0))])


class TestGammaDiagonalEstimator:
    def test_estimates_track_truth(self, survey_schema, survey_dataset):
        gamma = 20.0
        perturbed = GammaDiagonalPerturbation(survey_schema, gamma).perturb(
            survey_dataset, seed=0
        )
        estimator = GammaDiagonalSupportEstimator(perturbed, gamma)
        counter = ExactSupportCounter(survey_dataset)
        itemsets = [
            Itemset.of((0, 0)),
            Itemset.of((0, 0), (2, 1)),
            Itemset.of((0, 0), (1, 0), (2, 1)),
        ]
        estimates = estimator.supports(itemsets)
        truth = counter.supports(itemsets)
        assert np.allclose(estimates, truth, atol=0.06)

    def test_estimates_may_be_negative(self, survey_schema, survey_dataset):
        """Rare itemsets can reconstruct below zero -- by design."""
        gamma = 2.0  # heavy perturbation
        perturbed = GammaDiagonalPerturbation(survey_schema, gamma).perturb(
            survey_dataset, seed=1
        )
        estimator = GammaDiagonalSupportEstimator(perturbed, gamma)
        itemsets = [
            Itemset(zip((0, 1, 2), values))
            for values in [(2, 0, 0), (2, 1, 0), (1, 1, 1), (2, 0, 1)]
        ]
        estimates = estimator.supports(itemsets)
        assert np.isfinite(estimates).all()

    def test_full_domain_estimates_sum_to_one(self, survey_schema, survey_dataset):
        """Estimates over a complete sub-domain partition sum to 1."""
        gamma = 10.0
        perturbed = GammaDiagonalPerturbation(survey_schema, gamma).perturb(
            survey_dataset, seed=2
        )
        estimator = GammaDiagonalSupportEstimator(perturbed, gamma)
        itemsets = [Itemset.of((1, v)) for v in range(2)]
        assert estimator.supports(itemsets).sum() == pytest.approx(1.0)


class TestMaskEstimator:
    def test_estimates_track_truth(self, survey_schema, survey_dataset):
        mask = MaskPerturbation(survey_schema, p=0.9)
        bits = mask.perturb(survey_dataset, seed=3)
        estimator = MaskSupportEstimator(survey_schema, bits, mask)
        counter = ExactSupportCounter(survey_dataset)
        itemsets = [Itemset.of((0, 0)), Itemset.of((0, 0), (1, 1))]
        assert np.allclose(
            estimator.supports(itemsets), counter.supports(itemsets), atol=0.05
        )

    def test_shape_validation(self, survey_schema):
        mask = MaskPerturbation(survey_schema, p=0.9)
        with pytest.raises(DataError):
            MaskSupportEstimator(survey_schema, np.zeros((5, 3)), mask)


class TestCutAndPasteEstimator:
    def test_estimates_track_truth(self, survey_schema, survey_dataset):
        operator = CutAndPastePerturbation(survey_schema, max_cut=3, rho=0.2)
        bits = operator.perturb(survey_dataset, seed=4)
        estimator = CutAndPasteSupportEstimator(survey_schema, bits, operator)
        counter = ExactSupportCounter(survey_dataset)
        itemsets = [Itemset.of((0, 0)), Itemset.of((0, 0), (2, 1))]
        assert np.allclose(
            estimator.supports(itemsets), counter.supports(itemsets), atol=0.05
        )

    def test_shape_validation(self, survey_schema):
        operator = CutAndPastePerturbation(survey_schema, max_cut=3, rho=0.2)
        with pytest.raises(DataError):
            CutAndPasteSupportEstimator(survey_schema, np.zeros((5, 3)), operator)
