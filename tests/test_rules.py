"""Tests for repro.mining.rules."""

import pytest

from repro.exceptions import MiningError
from repro.mining.apriori import AprioriResult
from repro.mining.itemsets import Itemset
from repro.mining.rules import association_rules


@pytest.fixture
def result():
    """Hand-built mining result with known supports."""
    a, b = Itemset.of((0, 0)), Itemset.of((1, 0))
    ab = Itemset.of((0, 0), (1, 0))
    res = AprioriResult(min_support=0.1)
    res.by_length[1] = {a: 0.5, b: 0.4}
    res.by_length[2] = {ab: 0.3}
    return res


class TestRuleGeneration:
    def test_confidence_and_lift(self, result):
        rules = association_rules(result, min_confidence=0.5)
        by_antecedent = {r.antecedent: r for r in rules}
        a_to_b = by_antecedent[Itemset.of((0, 0))]
        assert a_to_b.confidence == pytest.approx(0.3 / 0.5)
        assert a_to_b.lift == pytest.approx((0.3 / 0.5) / 0.4)
        b_to_a = by_antecedent[Itemset.of((1, 0))]
        assert b_to_a.confidence == pytest.approx(0.75)

    def test_min_confidence_filters(self, result):
        rules = association_rules(result, min_confidence=0.7)
        assert all(r.confidence >= 0.7 for r in rules)
        assert len(rules) == 1  # only b -> a at 0.75

    def test_sorted_by_confidence(self, result):
        rules = association_rules(result, min_confidence=0.1)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_singletons_generate_nothing(self):
        res = AprioriResult(min_support=0.1)
        res.by_length[1] = {Itemset.of((0, 0)): 0.5}
        assert association_rules(res) == []

    def test_missing_subset_skipped(self):
        """Estimated results may lack a subset's support; skip quietly."""
        ab = Itemset.of((0, 0), (1, 0))
        res = AprioriResult(min_support=0.1)
        res.by_length[1] = {Itemset.of((0, 0)): 0.5}  # (1,0) missing
        res.by_length[2] = {ab: 0.3}
        rules = association_rules(res, min_confidence=0.1)
        assert len(rules) == 0  # a->b lacks consequent support; b->a lacks antecedent

    def test_three_item_rules(self):
        abc = Itemset.of((0, 0), (1, 0), (2, 0))
        res = AprioriResult(min_support=0.05)
        res.by_length[1] = {
            Itemset.of((0, 0)): 0.6,
            Itemset.of((1, 0)): 0.5,
            Itemset.of((2, 0)): 0.4,
        }
        res.by_length[2] = {
            Itemset.of((0, 0), (1, 0)): 0.35,
            Itemset.of((0, 0), (2, 0)): 0.3,
            Itemset.of((1, 0), (2, 0)): 0.25,
        }
        res.by_length[3] = {abc: 0.2}
        rules = association_rules(res, min_confidence=0.2)
        # 6 proper antecedents of abc + 2 per pair = 6 + 6 rules candidates.
        from_abc = [r for r in rules if r.support == pytest.approx(0.2)]
        assert len(from_abc) == 6

    def test_validation(self, result):
        with pytest.raises(MiningError):
            association_rules(result, min_confidence=0.0)
        with pytest.raises(MiningError):
            association_rules(result, min_confidence=1.5)

    def test_label(self, result, tiny_schema):
        rules = association_rules(result, min_confidence=0.5)
        label = rules[0].label(tiny_schema)
        assert "=>" in label


class TestEndToEnd:
    def test_rules_from_real_mining(self, survey_dataset):
        from repro.mining.reconstructing import mine_exact

        result = mine_exact(survey_dataset, 0.10)
        rules = association_rules(result, min_confidence=0.6)
        for rule in rules:
            # Confidence must equal support ratio from the result itself.
            full = rule.antecedent.union(rule.consequent)
            assert rule.confidence == pytest.approx(
                result.support_of(full) / result.support_of(rule.antecedent)
            )
