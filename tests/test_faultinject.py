"""SIGKILL crash-recovery: hosts die at fault barriers, nothing is lost.

Every test here drives a real child process into a held barrier (see
``tests/faultinject.py`` / :mod:`repro.faultpoints`), delivers SIGKILL
with the victim frozen at an exact interior point of a write sequence,
and then proves the durability contract: the survivors recover the
store / spool / claim state and a rerun produces results identical to
a run that was never disturbed.

These tests fork Python subprocesses and wait on leases, so they are
marked ``faultinject`` and run in their own CI lane; the whole module
still completes in seconds and is safe to run locally.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from faultinject import (
    clear_reached,
    fault_env,
    hold,
    kill_at,
    release,
    wait_reached,
)
from repro.data import census_schema, generate_census
from repro.data.io import FrdSpool
from repro.experiments.config import ExperimentConfig
from repro.experiments.orchestrator import (
    DatasetSpec,
    Orchestrator,
    comparison_cells,
)
from repro.store import ClaimBoard, ResultStore

pytestmark = pytest.mark.faultinject

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def launch(script: str, *argv: str, env: dict) -> subprocess.Popen:
    """Start a victim Python process with ``src`` importable."""
    env = dict(env)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", script, *argv],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def grid_for(n_records: int = 1200):
    spec = DatasetSpec.from_name("CENSUS", n_records=n_records)
    config = ExperimentConfig(min_support=0.05, mechanisms=("det-gd",))
    return comparison_cells(spec, config)[1]


def strip_seconds(result):
    """Comparable form of a decoded cell (wall-clock timing dropped)."""
    if isinstance(result, dict):
        return sorted((k, repr(v)) for k, v in result.items() if k != "seconds")
    return sorted((length, repr(level)) for length, level in result.by_length.items())


VICTIM_HOST = """
import sys
from repro.experiments.config import ExperimentConfig
from repro.experiments.orchestrator import (
    DatasetSpec, Orchestrator, comparison_cells,
)
from repro.store import ClaimBoard, ResultStore

store_root, claim_root, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
spec = DatasetSpec.from_name("CENSUS", n_records=n)
config = ExperimentConfig(min_support=0.05, mechanisms=("det-gd",))
cells = comparison_cells(spec, config)[1]
Orchestrator(
    store=ResultStore(store_root),
    fingerprint="fp",
    claims=ClaimBoard(claim_root, lease=2.0, holder="victim"),
).run(cells)
"""


class TestOrchestratorWorkerKilledMidCell:
    def test_survivor_steals_the_claim_and_completes_identically(self, tmp_path):
        grid = grid_for()
        reference = {
            name: strip_seconds(result)
            for name, result in Orchestrator(
                store=ResultStore(tmp_path / "ref"), fingerprint="fp"
            )
            .run(grid)
            .items()
        }

        faults = tmp_path / "faults"
        store_root, claim_root = tmp_path / "store", tmp_path / "claims"
        # Freeze (then kill) the victim inside the mechanism cell: its
        # exact cell commits, its mechanism claim is left dangling.
        hold(faults, "cell:mechanism")
        victim = launch(
            VICTIM_HOST,
            str(store_root),
            str(claim_root),
            "1200",
            env=fault_env(faults),
        )
        try:
            kill_at(victim, faults, "cell:mechanism")
        finally:
            release(faults, "cell:mechanism")

        board = ClaimBoard(claim_root, holder="survivor")
        # The victim left its mechanism claim dangling (it may already
        # have expired if the kill was slow; the file lingers either way
        # until the survivor steals it).
        assert list(claim_root.glob("*.claim"))
        dangling = board.holder_of(
            Orchestrator(store=ResultStore(store_root), fingerprint="fp").key_for(
                grid[1]
            )
        )
        assert dangling is None or dangling.holder == "victim"

        survivor = Orchestrator(
            store=ResultStore(store_root),
            fingerprint="fp",
            claims=board,
            poll_interval=0.05,
        )
        results = survivor.run(grid)
        assert {n: strip_seconds(r) for n, r in results.items()} == reference
        # The victim committed the exact cell before dying; the
        # survivor adopted it and recomputed only the torn mechanism.
        assert survivor.stats.hits == 1
        assert survivor.stats.misses == 1
        assert not list(claim_root.glob("*.claim"))


VICTIM_SPOOL = """
import sys
from repro.data import generate_census
from repro.data.io import FrdSpool

path, seed = sys.argv[1], int(sys.argv[2])
data = generate_census(60, seed=seed)
spool = FrdSpool(data.schema, path)
spool.append(data.records[40:])
"""


class TestSpoolAppendTorn:
    def test_torn_batch_is_dropped_and_reappend_is_byte_identical(self, tmp_path):
        seed = 77
        data = generate_census(60, seed=seed)
        schema = data.schema

        reference = tmp_path / "ref" / "ref.frd"
        with_spool = FrdSpool(schema, reference)
        with_spool.append(data.records[:40])
        with_spool.append(data.records[40:])
        with_spool.close()

        target = tmp_path / "torn" / "torn.frd"
        first = FrdSpool(schema, target)
        first.append(data.records[:40])
        first.close()

        faults = tmp_path / "faults"
        hold(faults, "spool:mid-append")
        victim = launch(VICTIM_SPOOL, str(target), str(seed), env=fault_env(faults))
        try:
            kill_at(victim, faults, "spool:mid-append")
        finally:
            release(faults, "spool:mid-append")

        # The victim wrote column 0 of the torn batch and nothing else:
        # the column files disagree until recovery truncates to the
        # 40-record complete prefix.
        sizes = {
            p.name: p.stat().st_size for p in target.parent.glob("*.spool")
        }
        assert len(set(sizes.values())) > 1, sizes

        recovered = FrdSpool(schema, target)
        assert recovered.n_records == 40
        np.testing.assert_array_equal(
            recovered.records(0, 40), data.records[:40]
        )
        recovered.append(data.records[40:])
        recovered.close()

        for j in range(schema.n_attributes):
            ref_col = (reference.parent / f"ref.frd.col{j}.spool").read_bytes()
            got_col = (target.parent / f"torn.frd.col{j}.spool").read_bytes()
            assert got_col == ref_col


VICTIM_PUT = """
import sys
import numpy as np
from repro.store import ResultStore

ResultStore(sys.argv[1]).put(
    sys.argv[2],
    {"answer": 42},
    arrays={"counts": np.arange(5, dtype=float)},
    meta={"fingerprint": "fp"},
)
"""


class TestStoreCommitTorn:
    def test_orphan_npz_is_never_served_and_gc_reclaims_it(self, tmp_path):
        root, key = tmp_path / "store", "deadbeef" * 8
        faults = tmp_path / "faults"
        hold(faults, "store:mid-commit")
        victim = launch(VICTIM_PUT, str(root), key, env=fault_env(faults))
        try:
            kill_at(victim, faults, "store:mid-commit")
        finally:
            release(faults, "store:mid-commit")

        store = ResultStore(root)
        assert (store.objects_dir / f"{key}.npz").exists()
        assert not (store.objects_dir / f"{key}.json").exists()
        assert store.get(key) is None  # the torn commit never hits
        assert store.gc(keep_fingerprint="fp") == 1
        assert not (store.objects_dir / f"{key}.npz").exists()

        # Recomputing commits cleanly and round-trips bit-identically.
        store.put(
            key,
            {"answer": 42},
            arrays={"counts": np.arange(5, dtype=float)},
            meta={"fingerprint": "fp"},
        )
        payload, arrays = store.get(key)
        assert payload == {"answer": 42}
        np.testing.assert_array_equal(arrays["counts"], np.arange(5, dtype=float))


SERVE_ARGS = (
    "serve",
    "--port",
    "0",
    "--schema",
    "census",
    "--max-latency",
    "0.002",
    "--seed",
    "4242",
)


def start_daemon(data_dir, env) -> tuple[subprocess.Popen, int]:
    env = dict(env)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli", *SERVE_ARGS,
         "--data-dir", str(data_dir)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    assert "listening on" in line, (line, process.stderr.read())
    return process, int(line.rsplit(":", 1)[1])


def spool_bytes(data_dir) -> dict:
    return {
        str(p.relative_to(data_dir)): p.read_bytes()
        for p in sorted(Path(data_dir).rglob("*.spool"))
    }


class TestServiceDaemonKilledMidSpoolAppend:
    def test_unacknowledged_batch_is_dropped_and_resubmit_converges(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.ledger import LedgerStore

        data = generate_census(80, seed=9)
        batch_a, batch_b = data.records[:48].tolist(), data.records[48:].tolist()

        def drive(client_port, batches, fresh=False):
            with ServiceClient(port=client_port) as client:
                if fresh:
                    client.register_tenant("acme")
                    client.open_collection("acme", "survey")
                for batch in batches:
                    client.submit("acme", batch, collection="survey")

        # Undisturbed reference: one daemon, both batches acknowledged.
        ref_dir = tmp_path / "ref-data"
        daemon, port = start_daemon(ref_dir, os.environ)
        try:
            drive(port, [batch_a, batch_b], fresh=True)
        finally:
            daemon.kill()
            daemon.wait()
        reference = spool_bytes(ref_dir)
        assert reference  # the daemon actually spooled something

        # Crash run: batch A acknowledged, then the daemon dies frozen
        # between column writes of batch B's spool append.
        faults = tmp_path / "faults"
        crash_dir = tmp_path / "crash-data"
        daemon, port = start_daemon(crash_dir, fault_env(faults))
        try:
            drive(port, [batch_a], fresh=True)
            wait_reached(faults, "spool:mid-append")  # batch A crossed it
            clear_reached(faults, "spool:mid-append")
            hold(faults, "spool:mid-append")
            failed = []

            def doomed_submit():
                try:
                    drive(port, [batch_b])
                except Exception as error:  # noqa: BLE001 - daemon dies mid-request
                    failed.append(error)

            submitter = threading.Thread(target=doomed_submit)
            submitter.start()
            kill_at(daemon, faults, "spool:mid-append")
            submitter.join(timeout=30)
            assert failed, "the torn submit must not be acknowledged"
        finally:
            release(faults, "spool:mid-append")
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        # The ledger acknowledged only batch A; the torn tail of B is
        # dropped on recovery (at-most-once submission semantics).
        ledger = LedgerStore(crash_dir).load("acme")
        assert ledger.collections["survey"].records == len(batch_a)

        # A restarted daemon recovers and the resubmitted batch lands
        # on the same perturbation stream position: byte-identical
        # spools to the never-disturbed run.
        daemon, port = start_daemon(crash_dir, os.environ)
        try:
            drive(port, [batch_b])
            time.sleep(0.05)  # let the post-ack ledger save settle
        finally:
            daemon.send_signal(signal.SIGINT)
            daemon.wait(timeout=30)
        assert spool_bytes(crash_dir) == reference
        ledger = LedgerStore(crash_dir).load("acme")
        assert ledger.collections["survey"].records == len(data.records)
