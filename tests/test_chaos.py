"""Chaos lane: network faults between a retrying client and a live daemon.

Each test starts a real ``frapp serve`` subprocess, routes a
:class:`~repro.service.client.ServiceClient` (armed with a
:class:`~repro.RetryPolicy`) through the :class:`tests.chaosproxy.ChaosProxy`,
and walks it through a deterministic fault gauntlet -- connection
resets, torn responses, blackholed acknowledgements, silent drops and
latency spikes.  The contract under proof:

* every keyed submission eventually succeeds despite the faults;
* the daemon's spool is **byte-identical** to an undisturbed run
  (exactly-once application -- no duplicated or reordered rows);
* the tenant ledger acknowledges each batch exactly once, with one
  journal entry per idempotency key.

The final test crosses chaos with the SIGKILL harness: the daemon dies
*after* journaling and spooling a keyed submission but *before* the
acknowledgement leaves the socket (the ``service:pre-respond``
barrier), and a restarted daemon must replay -- not re-apply -- the
same key.

These tests fork daemons and sleep through retry backoff, so they are
marked ``chaos`` and run in their own CI lane.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from chaosproxy import ChaosProxy
from faultinject import clear_reached, fault_env, hold, kill_at, release
from repro import RetryPolicy
from repro.data import generate_census
from repro.service.client import ServiceClient
from repro.service.ledger import LedgerStore

pytestmark = pytest.mark.chaos

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

SERVE_ARGS = (
    "serve",
    "--port",
    "0",
    "--schema",
    "census",
    "--max-latency",
    "0.002",
    "--seed",
    "4242",
)

#: Patient enough to cross the longest gauntlet (five consecutive bad
#: connections), deterministic jitter, 1s per-attempt timeout so a
#: blackholed acknowledgement fails fast.
RETRY = RetryPolicy(
    max_attempts=10,
    base_delay=0.02,
    max_delay=0.25,
    jitter=0.5,
    deadline=60.0,
    attempt_timeout=1.0,
    seed=7,
)

#: Named fault schedules, consumed one entry per proxy connection.
SCHEDULES = {
    "reset": ["reset", "reset"],
    "drop": ["drop"],
    "blackhole": ["blackhole"],
    "torn": ["torn"],
    "delay": ["delay"],
    "gauntlet": ["reset", "torn", "blackhole", "drop", "delay"],
}


def start_daemon(data_dir, env) -> tuple[subprocess.Popen, int]:
    env = dict(env)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli", *SERVE_ARGS,
         "--data-dir", str(data_dir)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    assert "listening on" in line, (line, process.stderr.read())
    return process, int(line.rsplit(":", 1)[1])


def stop_daemon(daemon: subprocess.Popen) -> None:
    if daemon.poll() is None:
        daemon.send_signal(signal.SIGINT)
        try:
            daemon.wait(timeout=30)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()


def spool_bytes(data_dir) -> dict:
    return {
        str(p.relative_to(data_dir)): p.read_bytes()
        for p in sorted(Path(data_dir).rglob("*.spool"))
    }


def batches_of(n_records: int = 90, n_batches: int = 3) -> list[list]:
    rows = generate_census(n_records, seed=9).records.tolist()
    step = n_records // n_batches
    return [rows[i * step:(i + 1) * step] for i in range(n_batches)]


def reference_run(data_dir, batches) -> dict:
    """Spool bytes of a never-disturbed daemon fed ``batches`` once each."""
    daemon, port = start_daemon(data_dir, os.environ)
    try:
        with ServiceClient(port=port) as client:
            client.register_tenant("acme")
            client.open_collection("acme", "survey")
            for batch in batches:
                client.submit("acme", batch, collection="survey")
    finally:
        stop_daemon(daemon)
    reference = spool_bytes(data_dir)
    assert reference  # the daemon actually spooled something
    return reference


class TestChaosGauntlet:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_keyed_submissions_survive_and_spool_bit_identically(
        self, tmp_path, name
    ):
        batches = batches_of()
        total = sum(len(batch) for batch in batches)
        reference = reference_run(tmp_path / "ref-data", batches)

        chaos_dir = tmp_path / "chaos-data"
        daemon, port = start_daemon(chaos_dir, os.environ)
        try:
            # Setup goes direct to the daemon; only the keyed submits
            # walk the fault gauntlet.
            with ServiceClient(port=port) as client:
                client.register_tenant("acme")
                client.open_collection("acme", "survey")
            with ChaosProxy(port, SCHEDULES[name]) as proxy:
                with ServiceClient(
                    port=proxy.port, timeout=5.0, retry=RETRY
                ) as client:
                    accepted = [
                        client.submit("acme", batch, collection="survey")
                        for batch in batches
                    ]
                assert all(
                    ack["accepted"] == len(batch)
                    for ack, batch in zip(accepted, batches)
                )
                # Every scheduled fault was actually inflicted.
                assert proxy.served[: len(SCHEDULES[name])] == SCHEDULES[name]
        finally:
            stop_daemon(daemon)

        # Exactly-once: bytes on disk match the undisturbed run, the
        # ledger charged each batch once, one journal entry per key.
        assert spool_bytes(chaos_dir) == reference
        ledger = LedgerStore(chaos_dir).load("acme")
        assert ledger.collections["survey"].records == total
        assert len(ledger.journal) == len(batches)

    def test_duplicate_submission_with_same_key_is_replayed_not_reapplied(
        self, tmp_path
    ):
        batches = batches_of()
        reference = reference_run(tmp_path / "ref-data", batches)

        chaos_dir = tmp_path / "chaos-data"
        daemon, port = start_daemon(chaos_dir, os.environ)
        try:
            with ServiceClient(port=port) as client:
                client.register_tenant("acme")
                client.open_collection("acme", "survey")
                acks = [
                    client.submit(
                        "acme",
                        batch,
                        collection="survey",
                        idempotency_key=f"batch-{i}",
                    )
                    for i, batch in enumerate(batches)
                ]
                # A blackholed ack looks exactly like this to the
                # client: the request applied, the response lost, the
                # same key resubmitted verbatim.
                replays = [
                    client.submit(
                        "acme",
                        batch,
                        collection="survey",
                        idempotency_key=f"batch-{i}",
                    )
                    for i, batch in enumerate(batches)
                ]
        finally:
            stop_daemon(daemon)

        for ack, replay in zip(acks, replays):
            assert replay.pop("replayed") is True
            assert "replayed" not in ack
            assert replay == ack
        assert spool_bytes(chaos_dir) == reference


class TestKilledBeforeAcknowledgement:
    def test_restarted_daemon_replays_the_journaled_key(self, tmp_path):
        batches = batches_of()
        total = sum(len(batch) for batch in batches)
        reference = reference_run(tmp_path / "ref-data", batches)

        faults = tmp_path / "faults"
        chaos_dir = tmp_path / "chaos-data"
        daemon, port = start_daemon(chaos_dir, fault_env(faults))
        try:
            with ServiceClient(port=port) as client:
                client.register_tenant("acme")
                client.open_collection("acme", "survey")
                for i, batch in enumerate(batches[:-1]):
                    client.submit(
                        "acme",
                        batch,
                        collection="survey",
                        idempotency_key=f"batch-{i}",
                    )
            # The last batch spools and journals, then the daemon dies
            # frozen one instruction before writing the response.  The
            # setup submits already crossed the barrier, so drop their
            # marker before arming it.
            clear_reached(faults, "service:pre-respond")
            hold(faults, "service:pre-respond")
            failed = []

            def doomed_submit():
                try:
                    with ServiceClient(port=port, timeout=30) as client:
                        client.submit(
                            "acme",
                            batches[-1],
                            collection="survey",
                            idempotency_key="batch-final",
                        )
                except Exception as error:  # noqa: BLE001 - daemon dies mid-request
                    failed.append(error)

            submitter = threading.Thread(target=doomed_submit)
            submitter.start()
            kill_at(daemon, faults, "service:pre-respond")
            submitter.join(timeout=30)
            assert failed, "the unacknowledged submit must fail client-side"
        finally:
            release(faults, "service:pre-respond")
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        # The journal committed with the spool: a client retrying the
        # same key against a restarted daemon gets a replay, never a
        # second application.
        daemon, port = start_daemon(chaos_dir, os.environ)
        try:
            with ServiceClient(port=port) as client:
                ack = client.submit(
                    "acme",
                    batches[-1],
                    collection="survey",
                    idempotency_key="batch-final",
                )
        finally:
            stop_daemon(daemon)

        assert ack["replayed"] is True
        assert ack["accepted"] == len(batches[-1])
        assert spool_bytes(chaos_dir) == reference
        ledger = LedgerStore(chaos_dir).load("acme")
        assert ledger.collections["survey"].records == total
        assert "batch-final" in ledger.journal
