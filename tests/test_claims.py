"""ClaimBoard protocol and claim-coordinated orchestration.

The correctness bar for multi-host ``frapp all`` (DESIGN.md, "Scaling
out"): N claim-coordinated hosts over one shared store must produce
results bit-identical to a single host, split the computed cells
between them, and recover from dead holders (expired leases) and
poisoned claim files without ever double-trusting a claim.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from faultinject import poison_claim
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.orchestrator import (
    DatasetSpec,
    Orchestrator,
    comparison_cells,
)
from repro.store import ClaimBoard, ResultStore


@pytest.fixture
def board_root(tmp_path):
    return tmp_path / "claims"


def board(root, holder, lease=60.0):
    return ClaimBoard(root, lease=lease, holder=holder)


class TestClaimBoard:
    def test_exclusive_acquire_and_release(self, board_root):
        a, b = board(board_root, "A"), board(board_root, "B")
        assert a.acquire("k") is True
        assert b.acquire("k") is False
        assert a.acquire("k") is False  # a board never re-claims its own
        assert b.holder_of("k").holder == "A"
        assert b.release("k") is False  # only the holder may release
        assert a.release("k") is True
        assert a.holder_of("k") is None
        assert b.acquire("k") is True

    def test_expired_lease_is_stolen_and_stale_release_is_inert(self, board_root):
        dying = board(board_root, "dying", lease=0.05)
        survivor = board(board_root, "survivor")
        assert dying.acquire("k")
        time.sleep(0.08)
        assert survivor.acquire("k") is True
        # The original (slow) holder must not clobber the thief's claim.
        assert dying.release("k") is False
        assert survivor.holder_of("k").holder == "survivor"

    def test_poisoned_claims_are_reclaimable(self, board_root):
        b = board(board_root, "B")
        poison_claim(b.root, "torn")  # truncated JSON
        assert b.acquire("torn") is True
        poison_claim(b.root, "fields", json.dumps({"key": "fields"}).encode())
        assert b.acquire("fields") is True  # missing holder/expiry fields
        poison_claim(b.root, "type", b"[1, 2, 3]")
        assert b.acquire("type") is True  # not even an object

    def test_live_claims_survive_poison_free_sweep(self, board_root):
        live = board(board_root, "live")
        live.acquire("keep")
        poison_claim(board_root, "junk")
        expired = board(board_root, "expired", lease=0.01)
        expired.acquire("gone")
        time.sleep(0.05)
        assert board(board_root, "sweeper").sweep() == 2
        assert live.holder_of("keep").holder == "live"

    def test_release_all_reports_and_clears(self, board_root):
        a = board(board_root, "A")
        a.acquire("k1")
        a.acquire("k2")
        assert a.held() == ("k1", "k2")
        assert a.release_all() == 2
        assert a.held() == ()
        assert a.release_all() == 0

    def test_concurrent_acquire_has_exactly_one_winner(self, board_root):
        boards = [board(board_root, f"h{i}") for i in range(8)]
        wins = []
        barrier = threading.Barrier(len(boards))

        def contend(b):
            barrier.wait()
            if b.acquire("contested"):
                wins.append(b.holder)

        threads = [threading.Thread(target=contend, args=(b,)) for b in boards]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_rejects_nonpositive_lease(self, board_root):
        with pytest.raises(ExperimentError):
            ClaimBoard(board_root, lease=0.0)


def _strip_seconds(result):
    """Comparable form of a decoded cell (wall-clock timing dropped)."""
    if isinstance(result, dict):
        return sorted((k, repr(v)) for k, v in result.items() if k != "seconds")
    return sorted((length, repr(level)) for length, level in result.by_length.items())


@pytest.fixture(scope="module")
def grid():
    spec = DatasetSpec.from_name("CENSUS", n_records=1500)
    config = ExperimentConfig(min_support=0.05, mechanisms=("det-gd", "mask"))
    _, cells = comparison_cells(spec, config)
    return cells


@pytest.fixture(scope="module")
def reference(grid, tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("ref-store"))
    results = Orchestrator(store=store, fingerprint="fp").run(grid)
    return {name: _strip_seconds(result) for name, result in results.items()}


class TestClaimedOrchestration:
    def test_claims_require_a_store(self):
        with pytest.raises(ExperimentError):
            Orchestrator(store=None, claims=object())

    def test_two_hosts_split_the_grid_bit_identically(
        self, grid, reference, tmp_path
    ):
        store_root, claim_root = tmp_path / "store", tmp_path / "claims"
        outcomes = {}

        def host(name):
            orch = Orchestrator(
                store=ResultStore(store_root),
                fingerprint="fp",
                claims=ClaimBoard(claim_root, holder=name),
            )
            results = orch.run(grid)
            outcomes[name] = (
                {n: _strip_seconds(r) for n, r in results.items()},
                orch.stats,
            )

        threads = [
            threading.Thread(target=host, args=(name,)) for name in ("h1", "h2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name in ("h1", "h2"):
            results, stats = outcomes[name]
            assert results == reference
        s1, s2 = outcomes["h1"][1], outcomes["h2"][1]
        assert s1.misses + s2.misses == len(grid)  # every cell computed once
        assert s1.remote + s2.remote == len(grid)  # and adopted by the other
        assert not list(claim_root.glob("*.claim"))  # all claims released

    def test_pooled_claimed_run_matches_reference(self, grid, reference, tmp_path):
        orch = Orchestrator(
            store=ResultStore(tmp_path / "store"),
            jobs=2,
            fingerprint="fp",
            claims=ClaimBoard(tmp_path / "claims", holder="pool"),
        )
        results = orch.run(grid)
        assert {n: _strip_seconds(r) for n, r in results.items()} == reference
        assert orch.stats.misses == len(grid)

    def test_dead_holder_claims_are_stolen_and_grid_completes(
        self, grid, reference, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        claim_root = tmp_path / "claims"
        # A "host" that claimed every ready cell and then died without
        # releasing: its leases expire almost immediately.
        dead = ClaimBoard(claim_root, lease=0.05, holder="dead-host")
        survivor_board = ClaimBoard(claim_root, lease=60.0, holder="survivor")
        live = Orchestrator(
            store=store,
            fingerprint="fp",
            claims=survivor_board,
            poll_interval=0.01,
        )
        for cell in grid:
            assert dead.acquire(live.key_for(cell))
        time.sleep(0.08)
        results = live.run(grid)
        assert {n: _strip_seconds(r) for n, r in results.items()} == reference
        assert live.stats.misses == len(grid)
        assert not list(claim_root.glob("*.claim"))

    def test_poisoned_claim_does_not_block_the_grid(self, grid, reference, tmp_path):
        store = ResultStore(tmp_path / "store")
        claim_root = tmp_path / "claims"
        orch = Orchestrator(
            store=store,
            fingerprint="fp",
            claims=ClaimBoard(claim_root, holder="h"),
            poll_interval=0.01,
        )
        for cell in grid:
            poison_claim(claim_root, orch.key_for(cell))
        results = orch.run(grid)
        assert {n: _strip_seconds(r) for n, r in results.items()} == reference

    def test_remote_commits_are_adopted_not_recomputed(self, grid, reference, tmp_path):
        store_root = tmp_path / "store"
        Orchestrator(store=ResultStore(store_root), fingerprint="fp").run(grid)
        # A claim-coordinated late joiner sees only committed results.
        late = Orchestrator(
            store=ResultStore(store_root),
            fingerprint="fp",
            claims=ClaimBoard(tmp_path / "claims", holder="late"),
        )
        results = late.run(grid)
        assert {n: _strip_seconds(r) for n, r in results.items()} == reference
        assert late.stats.misses == 0
        # Plain-hit accounting: the warm entries are found by the
        # initial store scan, before the claimed scheduler runs.
        assert late.stats.hits == len(grid)

    def test_erroring_host_releases_its_claims(self, tmp_path, grid):
        from repro.exceptions import FrappError

        board = ClaimBoard(tmp_path / "claims", holder="erratic")
        orch = Orchestrator(
            store=ResultStore(tmp_path / "store"),
            fingerprint="fp",
            claims=board,
        )
        spec = DatasetSpec.from_name("CENSUS", n_records=50)
        bad = [
            type(grid[0])(
                name="exact:BROKEN",
                func="exact",
                params={"dataset": spec.spec(), "min_support": -1.0},
            )
        ]
        with pytest.raises(FrappError):
            orch.run(bad)
        assert board.held() == ()
        assert not list((tmp_path / "claims").glob("*.claim"))

    def test_summary_mentions_adoption_only_when_present(self):
        from repro.experiments.orchestrator import CacheStats

        stats = CacheStats()
        stats.hits = 2
        assert "adopted" not in stats.summary()
        stats.record_remote()
        assert "1 adopted from peer(s)" in stats.summary()
        assert stats.hits == 3


class TestSolverEnvThreading:
    def test_solver_mode_is_env_not_key(self, tmp_path):
        # Result-invariant knob: portfolio and closed runs share cache
        # entries (same keys), so a warm cache survives switching.
        spec = DatasetSpec.from_name("CENSUS", n_records=1200)
        closed = comparison_cells(spec, ExperimentConfig(min_support=0.05))[1]
        portfolio = comparison_cells(
            spec, ExperimentConfig(min_support=0.05, solver="portfolio")
        )[1]
        orch = Orchestrator(store=ResultStore(tmp_path / "s"), fingerprint="fp")
        assert [orch.key_for(c) for c in closed] == [
            orch.key_for(c) for c in portfolio
        ]
        assert all(c.env["solver"] == "portfolio" for c in portfolio)

    def test_config_rejects_unknown_solver(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(solver="newton")

    def test_mechanism_cells_solver_invariant(self, tmp_path):
        spec = DatasetSpec.from_name("CENSUS", n_records=1200)
        base = ExperimentConfig(min_support=0.05, mechanisms=("det-gd",))
        results = {}
        for solver in ("closed", "portfolio"):
            config = ExperimentConfig(
                min_support=0.05, mechanisms=("det-gd",), solver=solver
            )
            orch = Orchestrator(
                store=ResultStore(tmp_path / solver), fingerprint="fp"
            )
            _, cells = comparison_cells(spec, config)
            results[solver] = {
                n: _strip_seconds(r) for n, r in orch.run(cells).items()
            }
        assert results["closed"] == results["portfolio"]
        del base  # silence linters: base documents the shared parameters