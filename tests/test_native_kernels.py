"""The native kernel layer: wrappers, edge cases, fallbacks, surfacing.

Four contracts under test:

* the compiled wrappers in :mod:`repro.mining.kernels.native` reproduce
  their NumPy references exactly (counts, realisations, RNG stream and
  state advance);
* the counting backends agree on every edge shape -- empty datasets,
  single records, tail-word boundaries around multiples of 64, and
  mixed-alignment chunk concatenation;
* the degradation ladder behaves: the ``np.bitwise_count``-less table
  popcount matches the builtin branch bit for bit, and
  ``count_backend=native`` without the extension downgrades to
  ``bitmap`` with exactly one warning;
* the resolved backend is surfaced -- service ``/v1/health``, the
  runtime estimator, and the ``frapp kernels`` report.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.core.engine as engine_module
from repro.core.engine import (
    GammaDiagonalPerturbation,
    RandomizedGammaDiagonalPerturbation,
)
from repro.core.privacy import rho2_from_gamma
from repro.data import census_schema, generate_census
from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import MiningError
from repro.experiments.cli import main
from repro.mining.counting import ExactSupportCounter
from repro.mining.itemsets import Itemset, all_items
from repro.mining.kernels import (
    BitmapSupportCounter,
    TransactionBitmaps,
    native,
    popcount_words,
    resolve_backend,
)
from repro.mining.kernels import bitmap as bitmap_module
from repro.mining.kernels import counting as counting_module
from repro.mining.apriori import generate_candidates
from repro.service import PerturbationService, ServiceConfig

needs_native = pytest.mark.skipif(
    not native.available(), reason="compiled kernel extension not built"
)

BACKENDS = ("loops", "bitmap", "native")

GAMMA = 19.0


def _schema(*cards):
    return Schema(
        [
            Attribute(f"a{i}", [f"v{j}" for j in range(card)])
            for i, card in enumerate(cards)
        ]
    )


def _dataset(schema, n, seed=0):
    rng = np.random.default_rng(seed)
    cards = np.asarray(schema.cardinalities)
    return CategoricalDataset(
        schema, rng.integers(0, cards, size=(n, schema.n_attributes))
    )


def _bitcount_reference(words, axis=None):
    """Popcount via Python ``int.bit_count`` -- slow but unarguable."""
    counts = np.asarray(np.frompyfunc(lambda w: int(w).bit_count(), 1, 1)(words))
    return counts.astype(np.int64).sum(axis=axis, dtype=np.int64)


def _realise_reference(joint, diagonal, n, keep, shift_draws):
    """The pure-NumPy keep-or-shift realisation the kernels replicate."""
    keep_mask = keep < diagonal
    shift = 1 + (shift_draws * (n - 1)).astype(np.int64)
    return np.where(keep_mask, joint, (joint + shift) % n)


# ----------------------------------------------------------------------
# compiled wrappers vs NumPy references
# ----------------------------------------------------------------------


@needs_native
class TestNativeWrappers:
    def test_popcounts_match_reference(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 2**63, size=(7, 5), dtype=np.int64).astype(
            np.uint64
        )
        assert native.popcount_total(words) == int(_bitcount_reference(words))
        got = native.popcount_rows(words)
        assert got.dtype == np.int64
        assert np.array_equal(got, _bitcount_reference(words, axis=1))

    def test_popcounts_of_empty(self):
        assert native.popcount_total(np.zeros(0, dtype=np.uint64)) == 0
        empty_rows = np.zeros((3, 0), dtype=np.uint64)
        assert np.array_equal(
            native.popcount_rows(empty_rows), np.zeros(3, dtype=np.int64)
        )

    def test_and_group_counts_matches_reduce(self):
        rng = np.random.default_rng(2)
        words = rng.integers(0, 2**63, size=(10, 4), dtype=np.int64).astype(
            np.uint64
        )
        groups = rng.integers(0, 10, size=(6, 3))
        expected_words = np.bitwise_and.reduce(words[groups], axis=1)
        expected = _bitcount_reference(expected_words, axis=1)
        out = np.empty((6, 4), dtype=np.uint64)
        counts = native.and_group_counts(words, groups, out_words=out)
        assert np.array_equal(counts, expected)
        assert np.array_equal(out, expected_words)
        # Scattered cache write: group g lands in row out_idx[g].
        scatter = np.zeros((9, 4), dtype=np.uint64)
        idx = np.array([8, 1, 5, 0, 2, 7])
        counts = native.and_group_counts(
            words, groups, out_words=scatter, out_idx=idx
        )
        assert np.array_equal(counts, expected)
        assert np.array_equal(scatter[idx], expected_words)

    def test_and_pair_counts_matches_reference(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2**63, size=(5, 6), dtype=np.int64).astype(np.uint64)
        b = rng.integers(0, 2**63, size=(8, 6), dtype=np.int64).astype(np.uint64)
        a_idx = rng.integers(0, 5, size=7)
        b_idx = rng.integers(0, 8, size=7)
        expected_words = a[a_idx] & b[b_idx]
        expected = _bitcount_reference(expected_words, axis=1)
        out = np.zeros((7, 6), dtype=np.uint64)
        counts = native.and_pair_counts(
            a, a_idx, b, b_idx, out_words=out, out_idx=np.arange(7)
        )
        assert np.array_equal(counts, expected)
        assert np.array_equal(out, expected_words)

    @pytest.mark.parametrize("scalar_diag", [True, False])
    def test_realise_from_uniforms_matches_reference(self, scalar_diag):
        rng = np.random.default_rng(4)
        n, m = 360, 500
        joint = rng.integers(0, n, size=m)
        draws = rng.random((m, 3))
        diagonal = 0.6 if scalar_diag else rng.random(m)
        got = native.realise_from_uniforms(
            joint, diagonal, n, draws, keep_col=1, shift_col=2
        )
        expected = _realise_reference(
            joint, diagonal, n, draws[:, 1], draws[:, 2]
        )
        assert got.dtype == np.int64
        assert np.array_equal(got, expected)

    def test_realise_decodes_like_unravel_index(self):
        rng = np.random.default_rng(5)
        cards = (5, 8, 9)
        n = int(np.prod(cards))
        m = 400
        joint = rng.integers(0, n, size=m)
        draws = rng.random((m, 2))
        got = native.realise_from_uniforms(
            joint, 0.55, n, draws, keep_col=0, shift_col=1,
            cards=cards, out_dtype=np.uint8,
        )
        realised = _realise_reference(joint, 0.55, n, draws[:, 0], draws[:, 1])
        expected = np.stack(np.unravel_index(realised, cards), axis=1)
        assert got.dtype == np.uint8
        assert got.shape == (m, len(cards))
        assert np.array_equal(got, expected)

    def test_draw_realise_matches_stream_and_advances_state(self):
        n, m = 270, 333
        joint = np.random.default_rng(6).integers(0, n, size=m)
        rng_native = np.random.default_rng(99)
        rng_python = np.random.default_rng(99)
        got = native.draw_realise(
            rng_native, joint, 0.4, n, width=2, keep_col=0, shift_col=1
        )
        draws = rng_python.random((m, 2))
        expected = _realise_reference(joint, 0.4, n, draws[:, 0], draws[:, 1])
        assert np.array_equal(got, expected)
        # Identical state advance: the next draw must agree too.
        assert rng_native.random() == rng_python.random()

    def test_wrapper_validation(self):
        words = np.zeros((4, 2), dtype=np.uint64)
        with pytest.raises(ValueError):
            native.and_group_counts(np.zeros((4, 2)), np.zeros((1, 1)))
        with pytest.raises(ValueError):
            native.and_group_counts(words, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            native.and_group_counts(
                words,
                np.zeros((1, 1), dtype=np.int64),
                out_words=np.zeros((1, 3), dtype=np.uint64),
            )
        with pytest.raises(ValueError):
            native.realise_from_uniforms(
                np.zeros(2, dtype=np.int64), 0.5, 4, np.zeros((3, 2)),
                keep_col=0, shift_col=1,
            )
        with pytest.raises(ValueError):
            native.realise_from_uniforms(
                np.zeros(2, dtype=np.int64), np.zeros(3), 4, np.zeros((2, 2)),
                keep_col=0, shift_col=1,
            )
        with pytest.raises(ValueError):
            native.draw_realise(
                np.random.default_rng(0), np.zeros(2, dtype=np.int64),
                0.5, 4, width=9, keep_col=0, shift_col=1,
            )
        with pytest.raises(ValueError):
            native.draw_realise(
                np.random.default_rng(0), np.zeros(2, dtype=np.int64),
                0.5, native.MAX_NATIVE_DOMAIN * 2, width=2,
                keep_col=0, shift_col=1,
            )


# ----------------------------------------------------------------------
# edge cases, identical across all three backends
# ----------------------------------------------------------------------


class TestBackendEdgeCases:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n", [1, 63, 64, 65, 127, 129])
    def test_tail_word_boundaries(self, backend, n):
        """Counts at and around the 64-record word boundary stay exact."""
        schema = _schema(3, 2, 4)
        dataset = _dataset(schema, n, seed=n)
        items = all_items(schema)
        queries = items + generate_candidates(items)
        counter = ExactSupportCounter(dataset, count_backend=backend)
        got = counter.supports(queries)
        records = np.asarray(dataset.records)
        for itemset, support in zip(queries, got):
            matches = np.ones(n, dtype=bool)
            for attr, value in itemset.items:
                matches &= records[:, attr] == value
            assert support == matches.sum() / n

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_dataset_raises(self, backend):
        schema = _schema(3, 2)
        empty = CategoricalDataset(schema, np.empty((0, 2), dtype=int))
        with pytest.raises(MiningError):
            ExactSupportCounter(empty, count_backend=backend).supports(
                [Itemset.of((0, 0))]
            )

    @pytest.mark.parametrize("backend", ["bitmap", "native"])
    def test_empty_bitmap_counts_are_zero(self, backend):
        """Zero records means zero words -- counts must come back 0."""
        schema = _schema(3, 2)
        bitmaps = TransactionBitmaps.from_records(
            schema, np.empty((0, 2), dtype=int)
        )
        assert bitmaps.n_words == 0
        counter = BitmapSupportCounter(bitmaps, backend=backend)
        items = all_items(schema)
        queries = items + generate_candidates(items)
        assert np.array_equal(
            counter.counts(queries), np.zeros(len(queries), dtype=np.int64)
        )
        assert bitmaps.itemset_count(items[0], backend=backend) == 0
        assert np.array_equal(
            bitmaps.subset_counts([0], backend=backend), np.zeros(3, np.int64)
        )

    @pytest.mark.parametrize("backend", ["bitmap", "native"])
    def test_single_record_bitmaps(self, backend):
        schema = _schema(4, 3)
        bitmaps = TransactionBitmaps.from_records(schema, [[2, 1]])
        assert bitmaps.itemset_count(Itemset.of((0, 2), (1, 1)), backend) == 1
        assert bitmaps.itemset_count(Itemset.of((0, 2), (1, 0)), backend) == 0
        expected = np.zeros(12, dtype=np.int64)
        expected[2 * 3 + 1] = 1
        assert np.array_equal(
            bitmaps.subset_counts([0, 1], backend=backend), expected
        )

    @pytest.mark.parametrize("backend", ["bitmap", "native"])
    def test_mixed_alignment_concatenate(self, backend):
        """Chunks with ragged tails merge without perturbing any count."""
        schema = _schema(3, 2, 3)
        dataset = _dataset(schema, 63 + 1 + 65 + 64, seed=17)
        records = np.asarray(dataset.records)
        parts, start = [], 0
        for size in (63, 1, 65, 64):
            parts.append(
                TransactionBitmaps.from_records(
                    schema, records[start : start + size]
                )
            )
            start += size
        merged = TransactionBitmaps.concatenate(parts)
        one_shot = TransactionBitmaps.from_records(schema, records)
        assert merged.n_records == one_shot.n_records
        items = all_items(schema)
        queries = items + generate_candidates(items)
        assert np.array_equal(
            BitmapSupportCounter(merged, backend=backend).counts(queries),
            BitmapSupportCounter(one_shot, backend=backend).counts(queries),
        )
        for positions in ([0], [1, 2], [0, 1, 2]):
            assert np.array_equal(
                merged.subset_counts(positions, backend=backend),
                one_shot.subset_counts(positions, backend=backend),
            )


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------


class TestPopcountTableFallback:
    """The pre-``np.bitwise_count`` table branch pins the builtin one."""

    def _compare(self, words, axis):
        expected = _bitcount_reference(words, axis=axis)
        got = popcount_words(words, axis=axis)
        assert np.shape(got) == np.shape(expected)
        assert np.asarray(got).dtype == np.int64
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_table_branch_matches_builtin(self, monkeypatch, axis):
        rng = np.random.default_rng(8)
        words = rng.integers(0, 2**63, size=(13, 21), dtype=np.int64).astype(
            np.uint64
        )
        builtin = None
        if bitmap_module._HAVE_BITWISE_COUNT:
            builtin = popcount_words(words, axis=axis)
        monkeypatch.setattr(bitmap_module, "_HAVE_BITWISE_COUNT", False)
        self._compare(words, axis)
        if builtin is not None:
            assert np.array_equal(popcount_words(words, axis=axis), builtin)

    def test_table_branch_edge_shapes(self, monkeypatch):
        monkeypatch.setattr(bitmap_module, "_HAVE_BITWISE_COUNT", False)
        self._compare(np.zeros((0, 4), dtype=np.uint64), None)
        self._compare(np.zeros((0, 4), dtype=np.uint64), 1)
        self._compare(np.uint64(2**63 - 1), None)
        rng = np.random.default_rng(9)
        cube = rng.integers(0, 2**63, size=(3, 4, 5), dtype=np.int64).astype(
            np.uint64
        )
        for axis in (None, 0, 1, 2):
            self._compare(cube, axis)

    def test_table_branch_slab_boundaries(self, monkeypatch):
        """Tiny slabs force every loop boundary without changing results."""
        monkeypatch.setattr(bitmap_module, "_HAVE_BITWISE_COUNT", False)
        monkeypatch.setattr(bitmap_module, "_POPCOUNT_SLAB_BYTES", 32)
        rng = np.random.default_rng(10)
        words = rng.integers(0, 2**63, size=(9, 7), dtype=np.int64).astype(
            np.uint64
        )
        for axis in (None, 0, 1):
            self._compare(words, axis)


def test_native_fallback_warns_once(monkeypatch):
    """Missing extension: one RuntimeWarning, then silent downgrades."""
    monkeypatch.setattr(native, "_lib", None)
    monkeypatch.setattr(counting_module, "_fallback_warned", False)
    assert not native.available()
    with pytest.warns(RuntimeWarning, match="falling back to 'bitmap'"):
        assert resolve_backend("native") == "bitmap"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("native") == "bitmap"
    # The other backends never warn, available extension or not.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("bitmap") == "bitmap"
        assert resolve_backend("loops") == "loops"


# ----------------------------------------------------------------------
# fused sampling == python sampling, bit for bit
# ----------------------------------------------------------------------


@needs_native
class TestEngineBitIdentity:
    """The fused kernels and the NumPy engine paths are interchangeable."""

    def _engines(self):
        schema = census_schema()
        return [
            GammaDiagonalPerturbation(schema, GAMMA),
            RandomizedGammaDiagonalPerturbation(
                schema, GAMMA, relative_alpha=0.5
            ),
        ]

    def test_perturb_chunk_identical(self, monkeypatch):
        records = generate_census(257, seed=3).records
        for engine in self._engines():
            rng_native = np.random.default_rng(11)
            native_out = engine.perturb_chunk(records, rng_native)
            monkeypatch.setattr(engine_module, "_native_sampler", lambda n: None)
            rng_python = np.random.default_rng(11)
            python_out = engine.perturb_chunk(records, rng_python)
            monkeypatch.undo()
            assert native_out.dtype == python_out.dtype
            assert np.array_equal(native_out, python_out)
            # Both paths must advance the generator identically.
            assert rng_native.random() == rng_python.random()

    def test_perturb_from_uniforms_identical(self, monkeypatch):
        records = generate_census(130, seed=4).records
        for engine in self._engines():
            draws = np.random.default_rng(12).random(
                (records.shape[0], engine.uniform_width)
            )
            native_out = engine.perturb_from_uniforms(records, draws)
            monkeypatch.setattr(engine_module, "_native_sampler", lambda n: None)
            python_out = engine.perturb_from_uniforms(records, draws)
            monkeypatch.undo()
            assert native_out.dtype == python_out.dtype
            assert np.array_equal(native_out, python_out)

    def test_empty_chunk_identical(self):
        empty = generate_census(5, seed=5).records[:0]
        for engine in self._engines():
            out = engine.perturb_chunk(empty, np.random.default_rng(0))
            assert out.shape == empty.shape


# ----------------------------------------------------------------------
# surfacing: service health, runtime estimator, CLI report
# ----------------------------------------------------------------------


class TestBackendSurfacing:
    def _service(self, tmp_path, backend):
        schema = census_schema()
        return PerturbationService(
            ServiceConfig(
                schema=schema,
                data_dir=str(tmp_path / backend),
                rho1=0.1,
                rho2=rho2_from_gamma(0.1, GAMMA),
                mechanism={"name": "det-gd", "params": {"gamma": GAMMA}},
                seed=1234,
                count_backend=backend,
            )
        )

    @pytest.mark.parametrize("backend", ["bitmap", "native"])
    def test_health_reports_counting_backend(self, tmp_path, backend):
        service = self._service(tmp_path, backend)
        try:
            counting = service.health()["counting"]
        finally:
            service.close()
        assert counting["requested_backend"] == backend
        assert counting["active_backend"] == resolve_backend(backend)
        assert counting["native_available"] == native.available()
        assert counting["forced_python"] == native.forced_python()

    def test_estimators_identical_across_backends(self, tmp_path):
        data = generate_census(300, seed=7)
        itemsets = [
            Itemset.of((0, 1)),
            Itemset.of((0, 0), (1, 1)),
            Itemset.of((2, 1), (3, 0)),
        ]
        supports = {}
        for backend in ("bitmap", "native"):
            service = self._service(tmp_path, backend)
            try:
                runtime = service._runtime("acme", "default")
                runtime.spool.append(
                    runtime.stream.perturb_batch(data.records)
                )
                supports[backend] = runtime.estimator().supports(itemsets)
            finally:
                service.close()
        assert np.array_equal(supports["bitmap"], supports["native"])

    def test_cli_kernels_report(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "requested count-backend : bitmap" in out
        assert "cross-backend probe     : ok (identical counts)" in out
        assert main(["kernels", "--count-backend", "native"]) == 0
        out = capsys.readouterr().out
        assert "requested count-backend : native" in out
        assert f"active count-backend    : {resolve_backend('native')}" in out

    def test_cli_kernels_rejects_operands(self):
        with pytest.raises(SystemExit):
            main(["kernels", "spurious"])
