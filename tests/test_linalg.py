"""Tests for repro.stats.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MatrixError
from repro.stats.linalg import (
    UniformOffDiagonalMatrix,
    condition_number,
    is_markov_matrix,
    is_symmetric,
    markov_violation,
)

uniform_family = st.builds(
    UniformOffDiagonalMatrix,
    n=st.integers(min_value=1, max_value=30),
    a=st.floats(min_value=0.01, max_value=5.0),
    b=st.floats(min_value=0.0, max_value=5.0),
)


class TestMarkovChecks:
    def test_identity_is_markov(self):
        assert is_markov_matrix(np.eye(4))

    def test_column_orientation(self):
        # Columns sum to 1, rows do not: valid in the paper's orientation.
        matrix = np.array([[0.9, 0.2], [0.1, 0.8]])
        assert is_markov_matrix(matrix)
        assert not is_markov_matrix(matrix.T @ np.diag([2.0, 1.0]))

    def test_violation_magnitude(self):
        matrix = np.array([[0.5, 0.5], [0.4, 0.5]])
        assert markov_violation(matrix) == pytest.approx(0.1)

    def test_negative_entry_detected(self):
        matrix = np.array([[1.1, 0.0], [-0.1, 1.0]])
        assert markov_violation(matrix) == pytest.approx(0.1)

    def test_non_2d_rejected(self):
        with pytest.raises(MatrixError):
            markov_violation(np.ones(3))


class TestSymmetric:
    def test_symmetric(self):
        assert is_symmetric(np.array([[1.0, 2.0], [2.0, 3.0]]))

    def test_asymmetric(self):
        assert not is_symmetric(np.array([[1.0, 2.0], [0.0, 3.0]]))

    def test_non_square(self):
        assert not is_symmetric(np.ones((2, 3)))


class TestConditionNumber:
    def test_identity(self):
        assert condition_number(np.eye(5)) == pytest.approx(1.0)

    def test_diagonal(self):
        assert condition_number(np.diag([4.0, 1.0])) == pytest.approx(4.0)

    def test_singular_is_inf(self):
        assert condition_number(np.zeros((3, 3))) == float("inf")

    def test_hilbert_is_ill_conditioned(self):
        """The paper's own example: a 5x5 Hilbert matrix has condition
        number around 1e5."""
        hilbert = np.array([[1.0 / (i + j + 1) for j in range(5)] for i in range(5)])
        assert 1e4 < condition_number(hilbert) < 1e6

    def test_non_square_rejected(self):
        with pytest.raises(MatrixError):
            condition_number(np.ones((2, 3)))


class TestUniformOffDiagonalMatrix:
    def test_dense_structure(self):
        m = UniformOffDiagonalMatrix(n=3, a=2.0, b=0.5)
        dense = m.to_dense()
        assert dense[0, 0] == pytest.approx(2.5)
        assert dense[0, 1] == pytest.approx(0.5)
        assert is_symmetric(dense)

    def test_bad_dimension(self):
        with pytest.raises(MatrixError):
            UniformOffDiagonalMatrix(n=0, a=1.0, b=0.0)

    @given(uniform_family)
    @settings(max_examples=60)
    def test_eigenvalues_match_dense(self, m):
        dense_eigs = np.sort(np.linalg.eigvalsh(m.to_dense()))
        lam1, lam2 = m.eigenvalues()
        if m.n == 1:
            assert dense_eigs[0] == pytest.approx(lam1, rel=1e-9, abs=1e-9)
        else:
            assert dense_eigs[-1] == pytest.approx(max(lam1, lam2), rel=1e-9, abs=1e-9)
            assert dense_eigs[0] == pytest.approx(min(lam1, lam2), rel=1e-9, abs=1e-9)

    @given(uniform_family)
    @settings(max_examples=60)
    def test_matvec_matches_dense(self, m):
        vector = np.linspace(-1.0, 1.0, m.n)
        assert np.allclose(m.matvec(vector), m.to_dense() @ vector)

    @given(uniform_family)
    @settings(max_examples=60)
    def test_solve_inverts_matvec(self, m):
        vector = np.linspace(0.5, 2.0, m.n)
        assert np.allclose(m.solve(m.matvec(vector)), vector, atol=1e-8)

    @given(uniform_family)
    @settings(max_examples=60)
    def test_inverse_is_closed_form(self, m):
        inv = m.inverse()
        product = m.to_dense() @ inv.to_dense()
        assert np.allclose(product, np.eye(m.n), atol=1e-8)

    def test_condition_number_matches_svd(self):
        m = UniformOffDiagonalMatrix(n=6, a=0.3, b=0.1)
        assert m.condition_number() == pytest.approx(
            condition_number(m.to_dense()), rel=1e-9
        )

    def test_condition_number_requires_spd(self):
        with pytest.raises(MatrixError):
            UniformOffDiagonalMatrix(n=3, a=-1.0, b=0.1).condition_number()

    def test_singular_solve_rejected(self):
        singular = UniformOffDiagonalMatrix(n=2, a=0.0, b=1.0)
        with pytest.raises(MatrixError):
            singular.solve(np.ones(2))

    def test_singular_inverse_rejected(self):
        # a + n*b = 0 makes the bulk eigenvalue vanish.
        singular = UniformOffDiagonalMatrix(n=2, a=2.0, b=-1.0)
        with pytest.raises(MatrixError):
            singular.inverse()

    def test_shape_mismatch_rejected(self):
        m = UniformOffDiagonalMatrix(n=3, a=1.0, b=0.0)
        with pytest.raises(MatrixError):
            m.matvec(np.ones(4))
        with pytest.raises(MatrixError):
            m.solve(np.ones(2))


class TestUniformOffDiagonalAtol:
    """One atol threads through is_singular/solve/inverse/condition_number."""

    def test_near_singular_solve_respects_atol(self):
        # a = 1e-13 sits below the default 1e-9 tolerance: rejected by
        # default, accepted when the caller loosens atol to exactly 0.
        near = UniformOffDiagonalMatrix(n=4, a=1e-13, b=1.0)
        with pytest.raises(MatrixError):
            near.solve(np.ones(4))
        x = near.solve(np.ones(4), atol=0.0)
        assert np.all(np.isfinite(x))
        # cond ~ 4e13, so the roundtrip only holds to ~cond * eps.
        assert np.allclose(near.matvec(x), np.ones(4), atol=1e-2)

    def test_near_singular_inverse_respects_atol(self):
        near = UniformOffDiagonalMatrix(n=4, a=1e-13, b=1.0)
        with pytest.raises(MatrixError):
            near.inverse()
        inv = near.inverse(atol=0.0)
        assert np.isfinite(inv.a) and np.isfinite(inv.b)

    def test_condition_number_boundary_matches_solve(self):
        # The same matrix must never be "solvable but condition-less"
        # (or vice versa) at one atol: both reject below, both accept
        # above.
        near = UniformOffDiagonalMatrix(n=4, a=1e-13, b=1.0)
        with pytest.raises(MatrixError):
            near.condition_number()
        cond = near.condition_number(atol=0.0)
        assert np.isfinite(cond) and cond >= 1.0

    def test_eigenvalue_exactly_at_atol_rejected(self):
        # Boundary semantics: <= atol counts as singular everywhere.
        atol = 0.5
        m = UniformOffDiagonalMatrix(n=3, a=atol, b=1.0)
        assert m.is_singular(atol)
        with pytest.raises(MatrixError):
            m.solve(np.ones(3), atol=atol)
        with pytest.raises(MatrixError):
            m.inverse(atol=atol)
        with pytest.raises(MatrixError):
            m.condition_number(atol=atol)
        assert not m.is_singular(atol=0.25)
        assert np.isfinite(m.condition_number(atol=0.25))

    def test_default_atol_unchanged_for_healthy_matrices(self):
        m = UniformOffDiagonalMatrix(n=6, a=0.3, b=0.1)
        assert m.condition_number() == m.condition_number(atol=0.0)
