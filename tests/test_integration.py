"""Cross-module integration tests: the paper's claims end to end.

These run the full perturb -> mine -> evaluate pipeline at reduced
dataset sizes and assert the *shape* of the paper's results:

* DET-GD/RAN-GD keep discovering long itemsets while MASK and C&P
  collapse (sigma- -> 100%) beyond length 3-4;
* MASK/C&P support errors explode with length while the gamma-diagonal
  errors stay bounded;
* RAN-GD is only marginally worse than DET-GD;
* reconstruction of the full joint distribution is accurate under
  strict privacy.
"""

import numpy as np
import pytest

from repro.core import GammaDiagonalPerturbation, reconstruct_counts
from repro.data.census import generate_census
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_comparison
from repro.mining.reconstructing import mine_exact


@pytest.fixture(scope="module")
def census():
    # Paper-scale CENSUS: the shape assertions below (especially
    # length-5/6 survival under the cascade) are realization-sensitive
    # at smaller sizes.
    return generate_census(50_000, seed=42)


@pytest.fixture(scope="module")
def comparison(census):
    """Per-level protocol: the Figures-1/2 evaluation."""
    return run_comparison(census, ExperimentConfig(seed=7))


@pytest.fixture(scope="module")
def cascade_comparison(census):
    """Apriori-cascade protocol: the deployable pipeline."""
    return run_comparison(census, ExperimentConfig(seed=7, protocol="apriori"))


class TestPaperShapePerLevel:
    """Shapes of Figures 1-2 under the per-length evaluation."""

    def test_baseline_support_error_explodes(self, comparison):
        """At length >= 3 the baselines' rho dwarfs DET-GD's."""
        det = comparison["DET-GD"].errors.rho
        for name in ("MASK", "C&P"):
            rho = comparison[name].errors.rho
            assert rho[3] > det[3], name
            assert rho[4] > det[4] * 3, name
        assert comparison["MASK"].errors.rho[6] > 1e3

    def test_gamma_diagonal_finds_long_itemsets(self, comparison):
        for name in ("DET-GD", "RAN-GD"):
            sigma_minus = comparison[name].errors.sigma_minus
            assert sigma_minus[5] < 70.0, name
            assert sigma_minus[6] < 70.0, name

    def test_ran_gd_marginally_worse_than_det_gd(self, comparison):
        """RAN-GD tracks DET-GD within a small factor (paper: 'only
        marginally lower accuracy')."""
        det = comparison["DET-GD"].errors
        ran = comparison["RAN-GD"].errors
        for length in (4, 5, 6):
            assert ran.rho[length] < det.rho[length] * 4 + 20
            assert ran.sigma_minus[length] <= det.sigma_minus[length] + 40

    def test_gamma_diagonal_rho_stays_bounded(self, comparison):
        rho = comparison["DET-GD"].errors.rho
        assert all(v < 500 for v in rho.values() if not np.isnan(v))


class TestPaperShapeCascade:
    """Under the deployable Apriori cascade, identification errors
    compound: the baselines collapse entirely at long lengths (the
    paper's 'MASK finds nothing above length 4-5, C&P above 3')."""

    def test_baselines_lose_long_itemsets(self, cascade_comparison):
        for name in ("MASK", "C&P"):
            sigma_minus = cascade_comparison[name].errors.sigma_minus
            assert sigma_minus[6] == pytest.approx(100.0), name
            assert sigma_minus[5] >= 90.0, name

    def test_gamma_diagonal_survives_longer(self, cascade_comparison):
        for name in ("DET-GD", "RAN-GD"):
            sigma_minus = cascade_comparison[name].errors.sigma_minus
            assert sigma_minus[5] < 95.0, name
            assert sigma_minus[6] < 95.0, name


class TestDistributionReconstruction:
    def test_joint_reconstruction_accuracy(self, survey_dataset):
        """On a compact joint domain (n=12) the reconstructed joint
        distribution is close to the truth at modest N."""
        engine = GammaDiagonalPerturbation(survey_dataset.schema, gamma=19.0)
        perturbed = engine.perturb(survey_dataset, seed=8)
        estimate = reconstruct_counts(engine.matrix, perturbed.joint_counts())
        truth = survey_dataset.joint_counts()
        rel_error = np.linalg.norm(estimate - truth) / np.linalg.norm(truth)
        assert rel_error < 0.25
        # Total mass is preserved exactly by the closed-form inverse.
        assert estimate.sum() == pytest.approx(truth.sum())

    def test_estimator_is_unbiased(self, census):
        """On the big CENSUS domain single-shot cell estimates are
        noisy (that is the price of gamma=19 over 2000 cells), but
        averaging reconstructions over independent perturbations
        converges to the truth -- the estimator is unbiased."""
        small = census.sample(8000, np.random.default_rng(0))
        engine = GammaDiagonalPerturbation(small.schema, gamma=19.0)
        truth = small.joint_counts()

        def error_of(estimate):
            return np.linalg.norm(estimate - truth) / np.linalg.norm(truth)

        estimates = [
            reconstruct_counts(
                engine.matrix, engine.perturb(small, seed=s).joint_counts()
            )
            for s in range(12)
        ]
        single = error_of(estimates[0])
        averaged = error_of(np.mean(estimates, axis=0))
        assert averaged < single / 2.0


class TestExactMiningReference:
    def test_census_reference_has_paper_shape(self, census):
        counts = mine_exact(census, 0.02).counts_by_length()
        assert counts[1] == 19
        assert 6 in counts  # long patterns exist
        assert counts[3] > counts[1]
