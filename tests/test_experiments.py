"""Tests for repro.experiments (config, runner, tables, figures)."""

import math

import pytest

from repro.data.census import generate_census
from repro.exceptions import ExperimentError
from repro.experiments.config import (
    ExperimentConfig,
    PAPER_GAMMA,
    PAPER_MIN_SUPPORT,
    dataset_scale,
)
from repro.experiments.figures import (
    figure1,
    figure3_posterior,
    figure3_support_error,
    figure4,
)
from repro.experiments.runner import run_comparison, run_mechanism
from repro.experiments.tables import PAPER_TABLE3, table1, table2, table3
from repro.mining.reconstructing import mine_exact


class TestConfig:
    def test_paper_defaults(self):
        config = ExperimentConfig()
        assert config.gamma == pytest.approx(19.0)
        assert config.min_support == 0.02
        assert config.relative_alpha == 0.5
        assert config.mechanisms == ("DET-GD", "RAN-GD", "MASK", "C&P")

    def test_paper_constants(self):
        assert PAPER_GAMMA == pytest.approx(19.0)
        assert PAPER_MIN_SUPPORT == 0.02

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(gamma=1.0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(min_support=0.0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(relative_alpha=2.0)

    def test_records_for(self):
        config = ExperimentConfig(n_records=5000)
        assert config.records_for(50_000) == 5000
        default = ExperimentConfig()
        assert default.records_for(50_000) == 50_000

    def test_dataset_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert dataset_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "junk")
        with pytest.raises(ExperimentError):
            dataset_scale()
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ExperimentError):
            dataset_scale()


class TestRunner:
    @pytest.fixture(scope="class")
    def small_census(self):
        return generate_census(6000, seed=1)

    def test_run_mechanism(self, small_census):
        config = ExperimentConfig(seed=0)
        run = run_mechanism(small_census, "DET-GD", config)
        assert run.mechanism == "DET-GD"
        assert run.seconds > 0
        assert run.errors.lengths()

    def test_unknown_mechanism(self, small_census):
        with pytest.raises(ExperimentError):
            run_mechanism(small_census, "laplace", ExperimentConfig())

    def test_shared_reference_consistency(self, small_census):
        """Passing the true result explicitly changes nothing."""
        config = ExperimentConfig(seed=4)
        truth = mine_exact(small_census, config.min_support)
        a = run_mechanism(small_census, "DET-GD", config, true_result=truth, seed=2)
        b = run_mechanism(small_census, "DET-GD", config, seed=2)
        assert a.errors.rho == b.errors.rho

    def test_run_comparison_covers_all_mechanisms(self, small_census):
        config = ExperimentConfig(seed=1, mechanisms=("DET-GD", "MASK"))
        runs = run_comparison(small_census, config)
        assert set(runs) == {"DET-GD", "MASK"}

    def test_comparison_deterministic(self, small_census):
        config = ExperimentConfig(seed=2, mechanisms=("DET-GD",))
        a = run_comparison(small_census, config)["DET-GD"]
        b = run_comparison(small_census, config)["DET-GD"]
        assert a.errors.rho.keys() == b.errors.rho.keys()
        for length, value in a.errors.rho.items():
            other = b.errors.rho[length]
            assert (math.isnan(value) and math.isnan(other)) or value == other


class TestTables:
    def test_table1_matches_paper(self):
        rows = dict(table1())
        assert list(rows) == [
            "age",
            "fnlwgt",
            "hours-per-week",
            "race",
            "sex",
            "native-country",
        ]
        assert rows["sex"] == ("Female", "Male")

    def test_table2_matches_paper(self):
        rows = dict(table2())
        assert len(rows) == 7
        assert rows["SEX"] == ("Male", "Female")

    def test_table3_structure(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        counts = table3()
        assert set(counts) == {"CENSUS", "HEALTH"}
        assert counts["CENSUS"][1] > 0

    def test_paper_table3_reference(self):
        assert PAPER_TABLE3["CENSUS"][6] == 10
        assert PAPER_TABLE3["HEALTH"][7] == 12


class TestFigures:
    def test_figure1_structure(self):
        config = ExperimentConfig(seed=3, mechanisms=("DET-GD",))
        panels = figure1(config, n_records=4000)
        assert set(panels) == {"rho", "sigma_minus", "sigma_plus"}
        assert "DET-GD" in panels["rho"]

    def test_figure3_posterior_paper_point(self):
        series = figure3_posterior(n=2000, gamma=19.0, prior=0.05, alphas=[0.0, 0.5])
        assert series["rho2"][0.5] == pytest.approx(0.50, abs=0.01)
        assert series["rho2_minus"][0.5] == pytest.approx(1 / 3, abs=0.02)
        assert series["rho2_plus"][0.5] == pytest.approx(0.60, abs=0.02)

    def test_figure3_posterior_monotone(self):
        series = figure3_posterior(n=2000)
        lows = [series["rho2_minus"][a] for a in sorted(series["rho2_minus"])]
        assert all(b <= a + 1e-12 for a, b in zip(lows, lows[1:]))

    def test_figure3_support_error_structure(self):
        config = ExperimentConfig(seed=5)
        series = figure3_support_error(
            "CENSUS", length=3, alphas=[0.0, 1.0], config=config, n_records=4000
        )
        assert set(series) == {"RAN-GD", "DET-GD"}
        det_values = set(series["DET-GD"].values())
        assert len(det_values) == 1  # flat reference line

    def test_figure4_structure(self):
        series = figure4("CENSUS")
        assert series["DET-GD"][1] == pytest.approx(2018 / 18)
        series_h = figure4("HEALTH")
        assert series_h["DET-GD"][1] == pytest.approx(7518 / 18)
        assert max(series_h["MASK"]) == 7

    def test_figure4_unknown_dataset(self):
        with pytest.raises(ValueError):
            figure4("MNIST")
