"""Tests for repro.core.engine (perturbation samplers)."""

import numpy as np
import pytest

from repro.core.engine import (
    GammaDiagonalPerturbation,
    MatrixPerturbation,
    RandomizedGammaDiagonalPerturbation,
)
from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError, MatrixError


def empirical_transition(schema, perturb, original_value, n_trials, seed):
    """Empirical distribution of perturb(original_value) over I_U."""
    records = np.tile(schema.decode(np.array([original_value])), (n_trials, 1))
    dataset = CategoricalDataset(schema, records)
    perturbed = perturb(dataset, seed)
    counts = np.bincount(perturbed.joint_indices(), minlength=schema.joint_size)
    return counts / n_trials


class TestGammaDiagonalVectorized:
    def test_preserves_shape_and_schema(self, tiny_schema, tiny_dataset):
        engine = GammaDiagonalPerturbation(tiny_schema, gamma=19.0)
        perturbed = engine.perturb(tiny_dataset, seed=0)
        assert perturbed.n_records == tiny_dataset.n_records
        assert perturbed.schema == tiny_schema

    def test_deterministic_with_seed(self, tiny_schema, tiny_dataset):
        engine = GammaDiagonalPerturbation(tiny_schema, gamma=19.0)
        assert engine.perturb(tiny_dataset, seed=1) == engine.perturb(
            tiny_dataset, seed=1
        )

    def test_schema_mismatch_rejected(self, tiny_schema, survey_dataset):
        engine = GammaDiagonalPerturbation(tiny_schema, gamma=19.0)
        with pytest.raises(DataError):
            engine.perturb(survey_dataset, seed=0)

    def test_invalid_method_rejected(self, tiny_schema):
        with pytest.raises(MatrixError):
            GammaDiagonalPerturbation(tiny_schema, gamma=19.0, method="magic")

    def test_empirical_matches_matrix(self, tiny_schema):
        """Empirical transition frequencies match the gamma-diagonal
        entries: the sampler realises exactly the matrix of Eq. 13."""
        engine = GammaDiagonalPerturbation(tiny_schema, gamma=5.0)
        n_trials = 200_000
        freq = empirical_transition(
            tiny_schema, engine.perturb, original_value=4, n_trials=n_trials, seed=2
        )
        expected = np.full(tiny_schema.joint_size, engine.matrix.x)
        expected[4] = engine.matrix.diagonal
        assert np.allclose(freq, expected, atol=4.0 / np.sqrt(n_trials))

    def test_high_gamma_keeps_most_records(self, tiny_schema, rng):
        records = np.stack(
            [rng.integers(0, c, size=2000) for c in tiny_schema.cardinalities], axis=1
        )
        dataset = CategoricalDataset(tiny_schema, records)
        engine = GammaDiagonalPerturbation(tiny_schema, gamma=1e6)
        perturbed = engine.perturb(dataset, seed=3)
        unchanged = np.mean(np.all(perturbed.records == dataset.records, axis=1))
        assert unchanged > 0.99

    def test_empty_dataset(self, tiny_schema):
        empty = CategoricalDataset(tiny_schema, np.empty((0, 2), dtype=int))
        engine = GammaDiagonalPerturbation(tiny_schema, gamma=19.0)
        assert engine.perturb(empty, seed=0).n_records == 0


class TestSequentialSampler:
    """The paper's Section-5 algorithm must realise the same matrix."""

    def test_empirical_matches_matrix(self, tiny_schema):
        engine = GammaDiagonalPerturbation(tiny_schema, gamma=5.0, method="sequential")
        n_trials = 120_000
        freq = empirical_transition(
            tiny_schema, engine.perturb, original_value=2, n_trials=n_trials, seed=4
        )
        expected = np.full(tiny_schema.joint_size, engine.matrix.x)
        expected[2] = engine.matrix.diagonal
        assert np.allclose(freq, expected, atol=5.0 / np.sqrt(n_trials))

    def test_agrees_with_vectorized_distribution(self, survey_schema):
        """Both samplers realise the same transition distribution."""
        n_trials = 60_000
        gamma = 3.0
        seq = GammaDiagonalPerturbation(survey_schema, gamma, method="sequential")
        vec = GammaDiagonalPerturbation(survey_schema, gamma, method="vectorized")
        f_seq = empirical_transition(survey_schema, seq.perturb, 7, n_trials, seed=5)
        f_vec = empirical_transition(survey_schema, vec.perturb, 7, n_trials, seed=6)
        assert np.allclose(f_seq, f_vec, atol=6.0 / np.sqrt(n_trials))

    def test_three_attribute_diagonal_mass(self, survey_schema):
        """P(unchanged) must be exactly gamma*x for the full record."""
        engine = GammaDiagonalPerturbation(survey_schema, gamma=8.0, method="sequential")
        n_trials = 50_000
        freq = empirical_transition(survey_schema, engine.perturb, 0, n_trials, seed=7)
        assert freq[0] == pytest.approx(engine.matrix.diagonal, abs=0.006)


class TestRandomizedPerturbation:
    def test_requires_exactly_one_alpha(self, tiny_schema):
        with pytest.raises(MatrixError):
            RandomizedGammaDiagonalPerturbation(tiny_schema, 19.0)
        with pytest.raises(MatrixError):
            RandomizedGammaDiagonalPerturbation(
                tiny_schema, 19.0, alpha=0.01, relative_alpha=0.5
            )

    def test_zero_alpha_matches_deterministic_distribution(self, tiny_schema):
        engine = RandomizedGammaDiagonalPerturbation(tiny_schema, 5.0, alpha=0.0)
        n_trials = 100_000
        freq = empirical_transition(tiny_schema, engine.perturb, 1, n_trials, seed=8)
        det = engine.expected_matrix
        expected = np.full(tiny_schema.joint_size, det.x)
        expected[1] = det.diagonal
        assert np.allclose(freq, expected, atol=4.0 / np.sqrt(n_trials))

    def test_expected_transition_matches_expected_matrix(self, tiny_schema):
        """Averaged over clients, Ã realises E[Ã] = A (Eq. 21)."""
        engine = RandomizedGammaDiagonalPerturbation(
            tiny_schema, 5.0, relative_alpha=1.0
        )
        n_trials = 200_000
        freq = empirical_transition(tiny_schema, engine.perturb, 3, n_trials, seed=9)
        det = engine.expected_matrix
        expected = np.full(tiny_schema.joint_size, det.x)
        expected[3] = det.diagonal
        assert np.allclose(freq, expected, atol=4.0 / np.sqrt(n_trials))

    def test_schema_mismatch_rejected(self, tiny_schema, survey_dataset):
        engine = RandomizedGammaDiagonalPerturbation(tiny_schema, 19.0, alpha=0.0)
        with pytest.raises(DataError):
            engine.perturb(survey_dataset, seed=0)


class TestMatrixPerturbation:
    def test_identity_matrix_is_noop(self, tiny_schema, tiny_dataset):
        engine = MatrixPerturbation(tiny_schema, np.eye(tiny_schema.joint_size))
        assert engine.perturb(tiny_dataset, seed=0) == tiny_dataset

    def test_empirical_matches_arbitrary_matrix(self, tiny_schema, rng):
        n = tiny_schema.joint_size
        raw = rng.uniform(0.1, 1.0, size=(n, n))
        matrix = raw / raw.sum(axis=0, keepdims=True)
        engine = MatrixPerturbation(tiny_schema, matrix)
        n_trials = 150_000
        freq = empirical_transition(tiny_schema, engine.perturb, 5, n_trials, seed=10)
        assert np.allclose(freq, matrix[:, 5], atol=4.0 / np.sqrt(n_trials))

    def test_dimension_mismatch_rejected(self, tiny_schema):
        with pytest.raises(MatrixError):
            MatrixPerturbation(tiny_schema, np.eye(4))

    def test_matches_gamma_diagonal_engine(self, tiny_schema):
        """Dense sampling of the gamma-diagonal matrix agrees with the
        specialised engines -- three independent implementations of the
        same distribution."""
        gamma = 4.0
        from repro.core.gamma_diagonal import GammaDiagonalMatrix

        dense = GammaDiagonalMatrix(tiny_schema.joint_size, gamma).to_dense()
        naive = MatrixPerturbation(tiny_schema, dense)
        fast = GammaDiagonalPerturbation(tiny_schema, gamma)
        n_trials = 120_000
        f_naive = empirical_transition(tiny_schema, naive.perturb, 0, n_trials, seed=11)
        f_fast = empirical_transition(tiny_schema, fast.perturb, 0, n_trials, seed=12)
        assert np.allclose(f_naive, f_fast, atol=6.0 / np.sqrt(n_trials))
