"""Tests for repro.baselines.cut_and_paste (Evfimievski et al. 2002)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cut_and_paste import (
    CutAndPastePerturbation,
    amplification,
    cut_size_distribution,
    partial_support_matrix,
    rho_for_gamma,
    transition_probability,
)
from repro.exceptions import DataError, MatrixError, PrivacyError
from repro.stats.linalg import condition_number


class TestCutSizeDistribution:
    def test_k_below_m(self):
        probs = cut_size_distribution(n_ones=6, max_cut=3)
        assert probs[:4].tolist() == [0.25] * 4
        assert probs[4:].sum() == 0.0

    def test_k_above_m_clamps(self):
        probs = cut_size_distribution(n_ones=2, max_cut=4)
        assert probs.tolist() == pytest.approx([0.2, 0.2, 0.6])

    def test_sums_to_one(self):
        for m, k in [(1, 0), (5, 3), (3, 10)]:
            assert cut_size_distribution(m, k).sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(MatrixError):
            cut_size_distribution(-1, 3)


class TestTransitionProbability:
    def test_monotone_in_overlap(self):
        """P(u -> v) grows with |u ∩ v| -- the basis of the worst-case
        amplification formula."""
        probs = [
            transition_probability(s, 6, 6, 23, 3, 0.45) for s in range(7)
        ]
        assert all(b >= a for a, b in zip(probs, probs[1:]))

    def test_k_zero_ignores_input(self):
        """Pure paste: the output is independent of the original."""
        a = transition_probability(0, 4, 6, 23, 0, 0.45)
        b = transition_probability(4, 4, 6, 23, 0, 0.45)
        assert a == pytest.approx(b)

    def test_validation(self):
        with pytest.raises(MatrixError):
            transition_probability(7, 6, 6, 23, 3, 0.45)  # overlap > ones
        with pytest.raises(MatrixError):
            transition_probability(0, 30, 6, 23, 3, 0.45)  # |v| > universe
        with pytest.raises(MatrixError):
            transition_probability(0, 4, 6, 23, 3, 1.5)  # bad rho

    def test_sums_to_one_over_targets(self):
        """Summing P(u -> v) over all boolean targets gives 1."""
        from math import comb

        m, n_bits, k, rho = 4, 8, 2, 0.37
        total = 0.0
        for lv in range(n_bits + 1):
            for s in range(min(m, lv) + 1):
                # number of v with |v|=lv and |u ∩ v| = s
                count = comb(m, s) * comb(n_bits - m, lv - s) if lv - s >= 0 else 0
                if count:
                    total += count * transition_probability(s, lv, m, n_bits, k, rho)
        assert total == pytest.approx(1.0)


class TestAmplificationAndRho:
    def test_closed_form(self):
        """amplification = sum_w P(w) rho^-w / P(0) for K <= M."""
        rho, k = 0.5, 3
        expected = 1 + 2 + 4 + 8  # rho^-w terms, equal P(w)
        assert amplification(6, k, rho) == pytest.approx(expected)

    @given(
        st.floats(min_value=0.1, max_value=0.9),
        st.integers(min_value=1, max_value=5),
    )
    def test_amplification_at_least_one(self, rho, k):
        assert amplification(6, k, rho) >= 1.0

    def test_monotone_decreasing_in_rho(self):
        values = [amplification(6, 3, rho) for rho in (0.2, 0.4, 0.6, 0.8)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_rho_for_gamma_binds(self):
        """The returned rho satisfies the bound tightly."""
        rho = rho_for_gamma(19.0, 6, 3)
        assert amplification(6, 3, rho) == pytest.approx(19.0, rel=1e-6)
        # Slightly smaller rho must violate it.
        assert amplification(6, 3, rho - 1e-3) > 19.0

    def test_census_ballpark(self):
        """Our exact accounting gives rho ~ 0.46 for the paper's
        gamma=19, K=3 (the paper reports 0.494 from its Eq.-12 variant;
        see the module docstring for the discrepancy discussion)."""
        rho = rho_for_gamma(19.0, 6, 3)
        assert 0.40 < rho < 0.50

    def test_k_zero_rejected(self):
        with pytest.raises(PrivacyError):
            rho_for_gamma(19.0, 6, 0)

    def test_unsatisfiable_gamma_rejected(self):
        """Very small gamma cannot be met with a revealing cut."""
        with pytest.raises(PrivacyError):
            rho_for_gamma(1.5, 6, 5)

    def test_amplification_validation(self):
        with pytest.raises(MatrixError):
            amplification(6, 3, 0.0)


class TestPartialSupportMatrix:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=60)
    def test_columns_are_distributions(self, k, max_cut, rho):
        m = 6
        k = min(k, m)
        matrix = partial_support_matrix(m, max_cut, rho, k)
        assert np.all(matrix >= -1e-12)
        assert np.allclose(matrix.sum(axis=0), 1.0)

    def test_rank_deficient_beyond_cut(self):
        """For k > K the matrix has rank at most K+1: the reason C&P
        cannot reconstruct long itemsets (paper Section 7.1)."""
        matrix = partial_support_matrix(6, 3, 0.45, 5)
        assert np.linalg.matrix_rank(matrix) <= 4

    def test_full_rank_within_cut(self):
        matrix = partial_support_matrix(6, 3, 0.45, 3)
        assert np.linalg.matrix_rank(matrix) == 4

    def test_condition_explodes_beyond_cut(self):
        within = condition_number(partial_support_matrix(6, 3, 0.45, 3))
        beyond = condition_number(partial_support_matrix(6, 3, 0.45, 4))
        assert beyond > within * 100

    def test_matches_monte_carlo(self, survey_schema, rng):
        """The analytic P(l' | l) matches the empirical operator."""
        operator = CutAndPastePerturbation(survey_schema, max_cut=2, rho=0.3)
        m = survey_schema.n_attributes  # 3 ones per record
        k = 2
        matrix = operator.reconstruction_matrix(k)
        # Build records whose intersection with the itemset {bit0, bit3}
        # is exactly l for l = 0..2, and measure l'.
        # bit0 = smokes:never, bit3 = sex:F.
        from repro.data.dataset import CategoricalDataset

        cases = {0: [1, 1, 0], 1: [0, 1, 0], 2: [0, 0, 1]}
        n_trials = 40_000
        for l_in, record in cases.items():
            dataset = CategoricalDataset(survey_schema, [record] * n_trials)
            bits = operator.perturb(dataset, seed=rng)
            inter = bits[:, [0, 3]].sum(axis=1)
            freq = np.bincount(inter, minlength=k + 1) / n_trials
            assert np.allclose(freq, matrix[:, l_in], atol=0.01), f"l={l_in}"

    def test_k_too_long_rejected(self):
        with pytest.raises(MatrixError):
            partial_support_matrix(3, 2, 0.4, 4)

    def test_validation(self):
        with pytest.raises(MatrixError):
            partial_support_matrix(6, 3, 0.4, 0)
        with pytest.raises(MatrixError):
            partial_support_matrix(6, 3, 1.0, 2)


class TestOperator:
    def test_output_shape(self, survey_schema, survey_dataset):
        operator = CutAndPastePerturbation(survey_schema, max_cut=3, rho=0.4)
        bits = operator.perturb(survey_dataset, seed=0)
        assert bits.shape == (survey_dataset.n_records, survey_schema.n_boolean)

    def test_deterministic_with_seed(self, survey_schema, survey_dataset):
        operator = CutAndPastePerturbation(survey_schema, max_cut=3, rho=0.4)
        a = operator.perturb(survey_dataset, seed=1)
        b = operator.perturb(survey_dataset, seed=1)
        assert np.array_equal(a, b)

    def test_ones_rate_matches_theory(self, survey_schema, survey_dataset):
        """E[|t'|] = E[w] + (Mb - E[w]) * rho."""
        max_cut, rho = 2, 0.3
        operator = CutAndPastePerturbation(survey_schema, max_cut, rho)
        bits = operator.perturb(survey_dataset, seed=2)
        expected_cut = np.dot(
            np.arange(4), cut_size_distribution(survey_schema.n_attributes, max_cut)
        )
        n_bits = survey_schema.n_boolean
        expected_ones = expected_cut + (n_bits - expected_cut) * rho
        assert bits.sum(axis=1).mean() == pytest.approx(expected_ones, abs=0.05)

    def test_for_gamma_satisfies_privacy(self, survey_schema):
        operator = CutAndPastePerturbation.for_gamma(survey_schema, 19.0)
        assert operator.amplification() <= 19.0 * (1 + 1e-9)

    def test_schema_mismatch(self, survey_schema, tiny_dataset):
        operator = CutAndPastePerturbation(survey_schema, 3, 0.4)
        with pytest.raises(DataError):
            operator.perturb(tiny_dataset, seed=0)

    def test_parameter_validation(self, survey_schema):
        with pytest.raises(MatrixError):
            CutAndPastePerturbation(survey_schema, -1, 0.4)
        with pytest.raises(MatrixError):
            CutAndPastePerturbation(survey_schema, 3, 0.0)

    def test_support_estimation_tracks_truth(self, survey_schema, survey_dataset):
        """Short-itemset estimates are close to true supports."""
        operator = CutAndPastePerturbation(survey_schema, max_cut=3, rho=0.2)
        bits = operator.perturb(survey_dataset, seed=3)
        true_support = np.mean(survey_dataset.column(0) == 0)
        estimate = operator.estimate_itemset_support(bits, [0])
        assert estimate == pytest.approx(true_support, abs=0.03)

    def test_empty_database_rejected(self, survey_schema):
        operator = CutAndPastePerturbation(survey_schema, 3, 0.4)
        with pytest.raises(DataError):
            operator.estimate_itemset_support(np.empty((0, 7)), [0])
