"""Tests for repro.core.breach (empirical privacy auditing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.breach import (
    audit_all_singletons,
    audit_property,
    empirical_posteriors,
    posterior_given_output,
)
from repro.core.engine import GammaDiagonalPerturbation
from repro.core.gamma_diagonal import GammaDiagonalMatrix
from repro.exceptions import MatrixError, PrivacyError


@pytest.fixture
def gd_matrix():
    return GammaDiagonalMatrix(n=8, gamma=19.0)


class TestAnalyticPosterior:
    def test_uniform_prior_gamma_diagonal(self, gd_matrix):
        """Uniform prior, singleton property: posterior follows the
        textbook Bayes computation."""
        n = gd_matrix.n
        prior = np.full(n, 1.0 / n)
        mask = np.zeros(n, dtype=bool)
        mask[0] = True
        posteriors = posterior_given_output(gd_matrix.to_dense(), prior, mask)
        # Seeing v=0: P = gamma*x/n / ((gamma*x + (n-1)x)/n) = gamma*x.
        assert posteriors[0] == pytest.approx(gd_matrix.gamma * gd_matrix.x)
        # Seeing any other v: x/n over 1/n.
        assert posteriors[1] == pytest.approx(gd_matrix.x)

    def test_identity_matrix_reveals_everything(self):
        prior = np.array([0.3, 0.7])
        mask = np.array([True, False])
        posteriors = posterior_given_output(np.eye(2), prior, mask)
        assert posteriors.tolist() == [1.0, 0.0]

    def test_uniform_matrix_reveals_nothing(self):
        prior = np.array([0.2, 0.3, 0.5])
        mask = np.array([True, False, False])
        posteriors = posterior_given_output(np.full((3, 3), 1 / 3), prior, mask)
        assert np.allclose(posteriors, 0.2)

    def test_zero_probability_outputs_are_nan(self):
        matrix = np.array([[1.0, 1.0], [0.0, 0.0]])
        posteriors = posterior_given_output(
            matrix, np.array([0.5, 0.5]), np.array([True, False])
        )
        assert np.isnan(posteriors[1])

    def test_validation(self, gd_matrix):
        n = gd_matrix.n
        with pytest.raises(MatrixError):
            posterior_given_output(np.ones((2, 3)), np.ones(3) / 3, np.zeros(3, bool))
        with pytest.raises(PrivacyError):
            posterior_given_output(
                gd_matrix.to_dense(), np.ones(n), np.zeros(n, bool)
            )  # prior doesn't sum to 1
        with pytest.raises(PrivacyError):
            posterior_given_output(
                gd_matrix.to_dense(), np.ones(n - 1) / (n - 1), np.zeros(n - 1, bool)
            )


class TestAudit:
    def test_worst_case_prior_hits_bound(self, gd_matrix):
        """The adversarial two-point distribution of paper Section 4.1
        achieves the amplification ceiling exactly."""
        n = gd_matrix.n
        prior = np.zeros(n)
        prior[0], prior[1] = 0.05, 0.95
        mask = np.zeros(n, dtype=bool)
        mask[0] = True
        audit = audit_property(gd_matrix.to_dense(), prior, mask, gd_matrix.gamma)
        assert audit.prior == pytest.approx(0.05)
        assert audit.bound == pytest.approx(0.50)
        assert audit.worst_posterior == pytest.approx(0.50)
        assert audit.within_bound

    @given(
        st.integers(min_value=2, max_value=12),
        st.floats(min_value=1.5, max_value=60.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60)
    def test_gamma_diagonal_never_breaches(self, n, gamma, seed):
        """Property: for ANY prior distribution and ANY singleton
        property, the gamma-diagonal matrix respects its (rho1, rho2)
        promise -- the distribution-independence the paper claims."""
        rng = np.random.default_rng(seed)
        matrix = GammaDiagonalMatrix(n=n, gamma=gamma).to_dense()
        prior = rng.dirichlet(np.ones(n) * rng.uniform(0.2, 3.0))
        for audit in audit_all_singletons(matrix, prior, gamma):
            assert audit.within_bound

    def test_leaky_matrix_detected(self):
        """A matrix violating the gamma constraint produces an actual
        breach on an adversarial distribution."""
        leaky = np.array([[0.99, 0.01], [0.01, 0.99]])  # amplification 99
        prior = np.array([0.05, 0.95])
        mask = np.array([True, False])
        audit = audit_property(leaky, prior, mask, gamma=19.0)
        assert not audit.within_bound

    def test_trivial_property_rejected(self, gd_matrix):
        n = gd_matrix.n
        prior = np.full(n, 1.0 / n)
        with pytest.raises(PrivacyError):
            audit_property(gd_matrix.to_dense(), prior, np.ones(n, bool), 19.0)

    def test_gamma_validation(self, gd_matrix):
        n = gd_matrix.n
        prior = np.full(n, 1.0 / n)
        mask = np.zeros(n, dtype=bool)
        mask[0] = True
        with pytest.raises(PrivacyError):
            audit_property(gd_matrix.to_dense(), prior, mask, gamma=1.0)

    def test_singleton_audits_skip_degenerate(self, gd_matrix):
        n = gd_matrix.n
        prior = np.zeros(n)
        prior[0] = 1.0
        assert audit_all_singletons(gd_matrix.to_dense(), prior, 19.0) == []


class TestEmpiricalPosteriors:
    def test_matches_analytic_on_real_perturbation(self, survey_schema, survey_dataset):
        """The matrix-free empirical posterior converges to the
        analytic one computed from the matrix."""
        gamma = 10.0
        engine = GammaDiagonalPerturbation(survey_schema, gamma)
        perturbed = engine.perturb(survey_dataset, seed=0)

        n = survey_schema.joint_size
        original = survey_dataset.joint_indices()
        prior = np.bincount(original, minlength=n) / len(original)
        mask = np.zeros(n, dtype=bool)
        mask[original[0]] = True  # property: "record equals cell of client 0"

        analytic = posterior_given_output(engine.matrix.to_dense(), prior, mask)
        empirical = empirical_posteriors(
            original, perturbed.joint_indices(), n, mask
        )
        both = np.isfinite(analytic) & np.isfinite(empirical)
        assert np.allclose(empirical[both], analytic[both], atol=0.06)

    def test_validation(self):
        with pytest.raises(PrivacyError):
            empirical_posteriors([0, 1], [0], 2, np.array([True, False]))
        with pytest.raises(PrivacyError):
            empirical_posteriors([0, 1], [0, 1], 2, np.array([True]))

    def test_rare_breach_amplitude_is_bounded(self, survey_schema, survey_dataset):
        """End-to-end: audit the deployed matrix against the dataset's
        own empirical distribution -- every singleton stays within the
        (rho1, rho2) ceiling."""
        gamma = 19.0
        engine = GammaDiagonalPerturbation(survey_schema, gamma)
        n = survey_schema.joint_size
        prior = np.bincount(survey_dataset.joint_indices(), minlength=n) / len(
            survey_dataset
        )
        for audit in audit_all_singletons(engine.matrix.to_dense(), prior, gamma):
            assert audit.within_bound
