"""Tests for repro.stats.rng."""

import numpy as np
import pytest

from repro.stats.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent(self):
        children = spawn_generators(5, 2)
        a, b = children[0].random(10), children[1].random(10)
        assert not np.array_equal(a, b)

    def test_deterministic_from_int_seed(self):
        a = [g.random() for g in spawn_generators(9, 3)]
        b = [g.random() for g in spawn_generators(9, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_generators(gen, 2)
        assert len(children) == 2
        assert all(isinstance(c, np.random.Generator) for c in children)
