"""Tests for the paper's CENSUS and HEALTH datasets (Tables 1-3)."""

import pytest

from repro.data.census import CENSUS_N_RECORDS, census_mixture, census_schema, generate_census
from repro.data.health import HEALTH_N_RECORDS, generate_health, health_mixture, health_schema
from repro.experiments.tables import PAPER_TABLE3
from repro.mining.reconstructing import mine_exact


class TestCensusSchema:
    """Paper Table 1, verbatim."""

    def test_attribute_names_and_order(self):
        assert census_schema().names == (
            "age",
            "fnlwgt",
            "hours-per-week",
            "race",
            "sex",
            "native-country",
        )

    def test_cardinalities(self):
        assert census_schema().cardinalities == (4, 5, 5, 5, 2, 2)

    def test_joint_size(self):
        assert census_schema().joint_size == 2000

    def test_nominal_categories(self):
        schema = census_schema()
        assert schema["race"].categories == (
            "White",
            "Asian-Pac-Islander",
            "Amer-Indian-Eskimo",
            "Other",
            "Black",
        )
        assert schema["sex"].categories == ("Female", "Male")
        assert schema["native-country"].categories == ("United-States", "Other")

    def test_age_bins(self):
        assert census_schema()["age"].categories == (
            "(15-35]",
            "(35-55]",
            "(55-75]",
            "> 75",
        )


class TestHealthSchema:
    """Paper Table 2, verbatim."""

    def test_attribute_names_and_order(self):
        assert health_schema().names == (
            "AGE",
            "BDDAY12",
            "DV12",
            "PHONE",
            "SEX",
            "INCFAM20",
            "HEALTH",
        )

    def test_cardinalities(self):
        assert health_schema().cardinalities == (5, 5, 5, 3, 2, 2, 5)

    def test_joint_size(self):
        assert health_schema().joint_size == 7500

    def test_health_status_categories(self):
        assert health_schema()["HEALTH"].categories == (
            "Excellent",
            "Very Good",
            "Good",
            "Fair",
            "Poor",
        )


class TestGenerators:
    def test_default_sizes(self):
        assert CENSUS_N_RECORDS == 50_000
        assert HEALTH_N_RECORDS == 100_000

    def test_census_deterministic(self):
        assert generate_census(1000) == generate_census(1000)

    def test_health_deterministic(self):
        assert generate_health(1000) == generate_health(1000)

    def test_custom_seed_changes_data(self):
        assert generate_census(1000, seed=1) != generate_census(1000, seed=2)

    def test_mixture_weights_feasible(self):
        assert 0.0 <= census_mixture().background_mass <= 1.0
        assert 0.0 <= health_mixture().background_mass <= 1.0

    def test_schemas_match_generators(self):
        assert generate_census(10).schema == census_schema()
        assert generate_health(10).schema == health_schema()


@pytest.mark.slow
class TestTable3Shape:
    """The generators are calibrated so frequent-itemset counts at
    supmin=2% have the same shape as paper Table 3."""

    def test_census_counts_close_to_paper(self):
        counts = mine_exact(generate_census(), 0.02).counts_by_length()
        paper = PAPER_TABLE3["CENSUS"]
        assert set(counts) == set(paper), "same maximum pattern length"
        assert counts[1] == paper[1], "frequent singletons match exactly"
        for length, expected in paper.items():
            assert counts[length] == pytest.approx(expected, rel=0.35), (
                f"length {length}"
            )

    def test_health_counts_close_to_paper(self):
        counts = mine_exact(generate_health(), 0.02).counts_by_length()
        paper = PAPER_TABLE3["HEALTH"]
        assert set(counts) == set(paper)
        for length, expected in paper.items():
            assert counts[length] == pytest.approx(expected, rel=0.35), (
                f"length {length}"
            )

    def test_census_has_long_patterns(self):
        counts = mine_exact(generate_census(20_000), 0.02).counts_by_length()
        assert counts.get(6, 0) >= 5
