"""Tests for repro.mining.classify (privacy-preserving naive Bayes)."""

import numpy as np
import pytest

from repro.core.engine import GammaDiagonalPerturbation
from repro.data.dataset import CategoricalDataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError, MiningError
from repro.mining.classify import NaiveBayesClassifier


@pytest.fixture
def labeled_schema():
    return Schema(
        [
            Attribute("f1", ["a", "b", "c"]),
            Attribute("f2", ["x", "y"]),
            Attribute("label", ["neg", "pos"]),
        ]
    )


@pytest.fixture
def labeled_data(labeled_schema, rng):
    """Strongly separable synthetic data: label follows f1 and f2."""
    n = 8000
    label = rng.integers(0, 2, size=n)
    f1 = np.where(
        label == 1,
        rng.choice(3, size=n, p=[0.7, 0.2, 0.1]),
        rng.choice(3, size=n, p=[0.1, 0.2, 0.7]),
    )
    f2 = np.where(
        label == 1,
        rng.choice(2, size=n, p=[0.8, 0.2]),
        rng.choice(2, size=n, p=[0.3, 0.7]),
    )
    return CategoricalDataset(labeled_schema, np.stack([f1, f2, label], axis=1))


class TestConstruction:
    def test_class_by_name_or_position(self, labeled_schema):
        by_name = NaiveBayesClassifier(labeled_schema, "label")
        by_pos = NaiveBayesClassifier(labeled_schema, 2)
        assert by_name.class_attribute == by_pos.class_attribute == 2

    def test_feature_attributes(self, labeled_schema):
        nb = NaiveBayesClassifier(labeled_schema, "label")
        assert nb.feature_attributes == (0, 1)
        assert nb.n_classes == 2

    def test_validation(self, labeled_schema):
        with pytest.raises(MiningError):
            NaiveBayesClassifier(labeled_schema, "label", smoothing=-1.0)

    def test_untrained_prediction_rejected(self, labeled_schema):
        nb = NaiveBayesClassifier(labeled_schema, "label")
        with pytest.raises(MiningError):
            nb.predict(np.zeros((1, 3), dtype=int))


class TestExactTraining:
    def test_learns_separable_data(self, labeled_schema, labeled_data):
        nb = NaiveBayesClassifier(labeled_schema, "label").fit(labeled_data)
        assert nb.accuracy(labeled_data) > 0.75

    def test_beats_majority_class(self, labeled_schema, labeled_data):
        nb = NaiveBayesClassifier(labeled_schema, "label").fit(labeled_data)
        majority = np.bincount(labeled_data.column("label")).max() / len(labeled_data)
        assert nb.accuracy(labeled_data) > majority

    def test_log_posteriors_shape(self, labeled_schema, labeled_data):
        nb = NaiveBayesClassifier(labeled_schema, "label").fit(labeled_data)
        scores = nb.log_posteriors(labeled_data.records[:10])
        assert scores.shape == (10, 2)
        assert np.all(scores <= 0)

    def test_prediction_matches_hand_computation(self, labeled_schema):
        # Deterministic data: label == (f2 == x).
        records = [[0, 0, 1], [0, 0, 1], [1, 1, 0], [1, 1, 0]]
        data = CategoricalDataset(labeled_schema, records)
        nb = NaiveBayesClassifier(labeled_schema, "label", smoothing=0.1).fit(data)
        predictions = nb.predict(np.array([[0, 0, 0], [1, 1, 0]]))
        assert predictions.tolist() == [1, 0]

    def test_schema_mismatch(self, labeled_schema, survey_dataset):
        nb = NaiveBayesClassifier(labeled_schema, "label")
        with pytest.raises(DataError):
            nb.fit(survey_dataset)

    def test_empty_dataset(self, labeled_schema):
        nb = NaiveBayesClassifier(labeled_schema, "label")
        empty = CategoricalDataset(labeled_schema, np.empty((0, 3), dtype=int))
        with pytest.raises(DataError):
            nb.fit(empty)


class TestReconstructedTraining:
    def test_tracks_exact_classifier_on_compact_domain(
        self, labeled_schema, labeled_data
    ):
        """On a small joint domain (12 cells) the privately-trained
        classifier approaches the exact one."""
        gamma = 19.0
        perturbed = GammaDiagonalPerturbation(labeled_schema, gamma).perturb(
            labeled_data, seed=0
        )
        exact = NaiveBayesClassifier(labeled_schema, "label").fit(labeled_data)
        private = NaiveBayesClassifier(labeled_schema, "label").fit_reconstructed(
            perturbed, gamma
        )
        assert private.accuracy(labeled_data) > exact.accuracy(labeled_data) - 0.08

    def test_more_privacy_less_accuracy_tendency(self, labeled_schema, labeled_data):
        """Average over seeds: gamma=50 should not be worse than
        gamma=3 (monotone tendency, allowing sampling slack)."""
        scores = {}
        for gamma in (3.0, 50.0):
            accs = []
            for seed in range(3):
                perturbed = GammaDiagonalPerturbation(labeled_schema, gamma).perturb(
                    labeled_data, seed=seed
                )
                nb = NaiveBayesClassifier(labeled_schema, "label").fit_reconstructed(
                    perturbed, gamma
                )
                accs.append(nb.accuracy(labeled_data))
            scores[gamma] = np.mean(accs)
        assert scores[50.0] >= scores[3.0] - 0.05

    def test_reconstructed_validation(self, labeled_schema):
        nb = NaiveBayesClassifier(labeled_schema, "label")
        empty = CategoricalDataset(labeled_schema, np.empty((0, 3), dtype=int))
        with pytest.raises(DataError):
            nb.fit_reconstructed(empty, 19.0)
