"""Tests for repro.data.synthetic (mixture-model generator)."""

import numpy as np
import pytest

from repro.data.schema import Attribute, Schema
from repro.data.synthetic import MixtureModel, Prototype
from repro.exceptions import DataError


@pytest.fixture
def schema():
    return Schema([Attribute("a", "xy"), Attribute("b", "pqr")])


@pytest.fixture
def marginals():
    return [(0.7, 0.3), (0.5, 0.3, 0.2)]


class TestValidation:
    def test_marginal_count(self, schema):
        with pytest.raises(DataError):
            MixtureModel(schema, [(0.5, 0.5)])

    def test_marginal_shape(self, schema):
        with pytest.raises(DataError):
            MixtureModel(schema, [(0.5, 0.5), (0.5, 0.5)])

    def test_marginal_sums_to_one(self, schema):
        with pytest.raises(DataError):
            MixtureModel(schema, [(0.6, 0.6), (0.5, 0.3, 0.2)])

    def test_negative_marginal(self, schema):
        with pytest.raises(DataError):
            MixtureModel(schema, [(1.2, -0.2), (0.5, 0.3, 0.2)])

    def test_prototype_arity(self, schema, marginals):
        with pytest.raises(DataError):
            MixtureModel(schema, marginals, [Prototype((0,), 0.1)])

    def test_prototype_domain(self, schema, marginals):
        with pytest.raises(DataError):
            MixtureModel(schema, marginals, [Prototype((0, 5), 0.1)])

    def test_prototype_weight_sign(self):
        with pytest.raises(DataError):
            Prototype((0, 0), -0.1)

    def test_total_weight_capped(self, schema, marginals):
        with pytest.raises(DataError):
            MixtureModel(
                schema, marginals, [Prototype((0, 0), 0.6), Prototype((1, 1), 0.6)]
            )

    def test_noise_range(self, schema, marginals):
        with pytest.raises(DataError):
            MixtureModel(schema, marginals, noise=1.5)

    def test_negative_n_records(self, schema, marginals):
        with pytest.raises(DataError):
            MixtureModel(schema, marginals).sample(-1)


class TestSampling:
    def test_shape_and_domain(self, schema, marginals):
        model = MixtureModel(schema, marginals)
        data = model.sample(500, seed=0)
        assert data.n_records == 500
        assert data.schema == schema

    def test_deterministic_with_seed(self, schema, marginals):
        model = MixtureModel(schema, marginals)
        assert model.sample(100, seed=5) == model.sample(100, seed=5)

    def test_background_matches_marginals(self, schema, marginals):
        model = MixtureModel(schema, marginals)
        data = model.sample(60_000, seed=1)
        freq = data.value_counts(0) / data.n_records
        assert freq[0] == pytest.approx(0.7, abs=0.01)

    def test_zero_noise_prototypes_exact(self, schema, marginals):
        model = MixtureModel(
            schema, marginals, [Prototype((1, 2), 1.0)], noise=0.0
        )
        data = model.sample(200, seed=2)
        assert np.all(data.records == [1, 2])

    def test_prototypes_create_correlation(self, schema, marginals):
        """A heavy prototype makes its joint cell far exceed the
        independent-marginals product."""
        model = MixtureModel(
            schema, marginals, [Prototype((1, 2), 0.4)], noise=0.05
        )
        data = model.sample(50_000, seed=3)
        joint = data.joint_counts() / data.n_records
        cell = schema.encode(np.array([[1, 2]]))[0]
        independent = 0.3 * 0.2
        assert joint[cell] > independent + 0.2

    def test_expected_marginal_matches_empirical(self, schema, marginals):
        model = MixtureModel(
            schema,
            marginals,
            [Prototype((0, 1), 0.25), Prototype((1, 0), 0.15)],
            noise=0.2,
        )
        data = model.sample(120_000, seed=4)
        for attr in range(2):
            expected = model.expected_marginal(attr)
            assert expected.sum() == pytest.approx(1.0)
            empirical = data.value_counts(attr) / data.n_records
            assert np.allclose(empirical, expected, atol=0.01)

    def test_background_mass(self, schema, marginals):
        model = MixtureModel(schema, marginals, [Prototype((0, 0), 0.3)])
        assert model.background_mass == pytest.approx(0.7)

    def test_empty_sample(self, schema, marginals):
        data = MixtureModel(schema, marginals).sample(0, seed=0)
        assert data.n_records == 0
