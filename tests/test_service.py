"""The always-on service: spool durability, ledgers, batching, HTTP.

The load-bearing claims under test:

* ``FrdSpool`` appends survive crashes: recovery truncates to complete
  (and acknowledged) rows, including a torn column file;
* the per-tenant ledger charges, persists atomically, refuses over
  budget with a structured error, allows exact exhaustion, and never
  silently resets corrupt state;
* statement merging is order-invariant and JSON round-trips exactly
  (Hypothesis);
* the micro-batcher coalesces submissions in arrival order and flushes
  on both thresholds;
* the HTTP service's perturbation is bit-identical to the offline
  engine for any submission partition, across restarts, and refuses
  budget breaches with HTTP 403;
* keyed requests are exactly-once: duplicates replay the journaled
  response (across restarts too), key reuse with a different payload is
  HTTP 409, and the journal is crash-atomic with the ledger ack;
* admission control sheds over-limit work with structured HTTP 429 +
  ``Retry-After`` *before* any state change, and the client's
  :class:`RetryPolicy` backs off deterministically under its deadline.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.privacy import PrivacyRequirement, rho2_from_gamma
from repro.data import census_schema, generate_census
from repro.data.io import FrdSpool
from repro.exceptions import (
    BudgetExceededError,
    DeadlineExceededError,
    PrivacyError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from repro.mechanisms import MechanismSpec, PrivacyAccountant, from_spec
from repro.mechanisms.accountant import PrivacyStatement
from repro.mechanisms.base import MarginalInversionEstimator
from repro.mining.itemsets import Itemset
from repro.pipeline.batch import SequentialPerturbStream
from repro.service import (
    LedgerStore,
    MicroBatcher,
    PerturbationService,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    derive_collection_seed,
)
from repro.service import wire
from repro.service.ledger import JOURNAL_CAP, TenantLedger

RHO1 = 0.05
GAMMA = 19.0


@pytest.fixture(scope="module")
def schema():
    return census_schema()


@pytest.fixture(scope="module")
def data(schema):
    return generate_census(400, seed=5)


def make_config(schema, tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        schema=schema,
        data_dir=str(tmp_path / "state"),
        rho1=RHO1,
        rho2=rho2_from_gamma(RHO1, GAMMA),
        mechanism={"name": "det-gd", "params": {"gamma": GAMMA}},
        seed=1234,
        max_latency=0.002,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def run_service(config: ServiceConfig, client_fn):
    """Start a real server, run ``client_fn(port)`` in a thread, stop."""

    async def main():
        server = ServiceServer(PerturbationService(config), port=0)
        port = await server.start()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, client_fn, port)
        finally:
            await server.stop()

    return asyncio.run(main())


def offline_perturb(schema, data, seed):
    engine = from_spec(MechanismSpec("det-gd", {"gamma": GAMMA}), schema)
    return engine.perturb(data, seed=seed)


# ----------------------------------------------------------------------
# FrdSpool durability
# ----------------------------------------------------------------------


class TestFrdSpool:
    def test_append_and_read_back(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            start, stop = spool.append(data.records[:150])
            assert (start, stop) == (0, 150)
            start, stop = spool.append(data.records[150:])
            assert (start, stop) == (150, 400)
            assert len(spool) == 400
            np.testing.assert_array_equal(
                spool.records(0, 400), data.records
            )
            np.testing.assert_array_equal(
                spool.records(150, 160), data.records[150:160]
            )

    def test_reopen_recovers_all_rows(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            spool.append(data.records)
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            assert spool.n_records == 400
            np.testing.assert_array_equal(spool.records(0, 400), data.records)

    def test_torn_column_truncates_to_complete_rows(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            spool.append(data.records)
        # Tear the last column file mid-record: recovery must drop the
        # incomplete tail from EVERY column.
        torn = sorted(tmp_path.glob("a.frd.col*.spool"))[-1]
        torn.write_bytes(torn.read_bytes()[:-3])
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            assert spool.n_records < 400
            complete = spool.n_records
            np.testing.assert_array_equal(
                spool.records(0, complete), data.records[:complete]
            )
            # The spool stays appendable after recovery.
            spool.append(data.records[complete:])
            np.testing.assert_array_equal(spool.records(0, 400), data.records)

    def test_expected_records_caps_recovery(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            spool.append(data.records)
        # An unacknowledged fsynced tail: the ledger only acked 300.
        with FrdSpool(schema, tmp_path / "a.frd", expected_records=300) as spool:
            assert spool.n_records == 300
            np.testing.assert_array_equal(
                spool.records(0, 300), data.records[:300]
            )

    def test_to_dataset_and_checkpoint(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            spool.append(data.records)
            dataset = spool.to_dataset()
            assert dataset.n_records == 400
            np.testing.assert_array_equal(dataset.records, data.records)
            spool.checkpoint()
            from repro.data import open_frd

            frd = open_frd(tmp_path / "a.frd")
            np.testing.assert_array_equal(frd.records(0, 400), data.records)
            # Still appendable after the checkpoint.
            spool.append(data.records[:10])
            assert spool.n_records == 410


# ----------------------------------------------------------------------
# ledger accounting
# ----------------------------------------------------------------------


def statement_for(gamma: float) -> PrivacyStatement:
    schema = census_schema()
    mechanism = from_spec(MechanismSpec("det-gd", {"gamma": gamma}), schema)
    return PrivacyAccountant(rho1=RHO1).statement(mechanism)


class TestLedger:
    def budget(self, gamma: float) -> PrivacyRequirement:
        return PrivacyRequirement(RHO1, rho2_from_gamma(RHO1, gamma))

    def test_charge_accumulates_product(self, tmp_path):
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(400.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        ledger.charge("b", statement_for(19.0), seed=2)
        assert ledger.cumulative_amplification() == pytest.approx(361.0)
        assert ledger.cumulative_rho2() == pytest.approx(
            rho2_from_gamma(RHO1, 361.0)
        )

    def test_refusal_is_structured_and_leaves_state(self, tmp_path):
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(20.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        before = ledger.to_dict()
        with pytest.raises(BudgetExceededError) as excinfo:
            ledger.charge("b", statement_for(19.0), seed=2)
        error = excinfo.value
        assert error.status == 403
        assert error.code == "budget_exceeded"
        assert error.details["tenant"] == "t"
        assert error.details["projected_amplification"] == pytest.approx(361.0)
        # The refused charge must not have touched anything.
        assert ledger.to_dict() == before
        assert "b" not in ledger.collections

    def test_exact_exhaustion_is_admitted(self, tmp_path):
        """A sequence that lands exactly on the budget: charge, charge,
        refuse -- with the final refusal keeping the earlier spend."""
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(19.0 * 19.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        ledger.charge("b", statement_for(19.0), seed=2)  # exactly exhausts
        assert ledger.headroom() == pytest.approx(1.0)
        with pytest.raises(BudgetExceededError):
            ledger.charge("c", statement_for(1.5), seed=3)
        assert sorted(ledger.collections) == ["a", "b"]

    def test_duplicate_collection_conflicts(self, tmp_path):
        ledger = LedgerStore(tmp_path).create("t", self.budget(400.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        with pytest.raises(ServiceError) as excinfo:
            ledger.charge("a", statement_for(2.0), seed=2)
        assert excinfo.value.code == "collection_exists"
        assert excinfo.value.status == 409

    def test_persist_and_reload_bitwise(self, tmp_path):
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(400.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        ledger.charge("b", statement_for(3.0), seed=2)
        ledger.collections["a"].records = 123
        store.save(ledger)
        reloaded = store.load("t")
        assert reloaded.to_dict() == ledger.to_dict()
        assert reloaded.cumulative_rho2() == ledger.cumulative_rho2()
        assert store.tenants() == ["t"]

    def test_corrupt_ledger_never_resets(self, tmp_path):
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(400.0))
        path = store.tenant_dir("t") / "ledger.json"
        path.write_text("{ not json")
        with pytest.raises(ServiceError) as excinfo:
            store.load("t")
        assert excinfo.value.code == "ledger_corrupt"
        assert excinfo.value.status == 500

    def test_prior_mismatch_rejected(self, tmp_path):
        ledger = LedgerStore(tmp_path).create(
            "t", PrivacyRequirement(0.10, 0.50)
        )
        with pytest.raises(ServiceError):
            ledger.charge("a", statement_for(19.0), seed=1)  # rho1=0.05


# ----------------------------------------------------------------------
# statement merge: order invariance + serialisation (Hypothesis)
# ----------------------------------------------------------------------


gammas = st.lists(
    st.floats(min_value=1.01, max_value=50.0, allow_nan=False),
    min_size=2,
    max_size=6,
)


class TestStatementMerge:
    @given(gammas=gammas, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_merge_order_never_changes_reported_rho(self, gammas, seed):
        statements = [
            PrivacyStatement(
                mechanism=f"m{i}",
                spec={"name": f"m{i}", "params": {}},
                amplification=g,
                rho1=RHO1,
                rho2=rho2_from_gamma(RHO1, g),
            )
            for i, g in enumerate(gammas)
        ]
        rng = np.random.default_rng(seed)

        def fold(order):
            items = [statements[i] for i in order]
            merged = items[0]
            for item in items[1:]:
                merged = merged.merge(item)
            return merged

        left = fold(range(len(statements)))
        shuffled = fold(rng.permutation(len(statements)))
        assert left.amplification == shuffled.amplification
        assert left.rho2 == shuffled.rho2
        assert left.rho1 == shuffled.rho1
        assert left.factors == shuffled.factors
        # And a right-fold via a different tree shape: pairwise halves.
        if len(statements) >= 4:
            half = len(statements) // 2
            tree = fold(range(half)).merge(fold(range(half, len(statements))))
            assert tree.amplification == left.amplification
            assert tree.rho2 == left.rho2

    @given(gammas=gammas)
    @settings(max_examples=40, deadline=None)
    def test_statement_json_round_trip_exact(self, gammas):
        merged = statement_for(19.0)
        for g in gammas:
            merged = merged.merge(
                PrivacyStatement(
                    mechanism="x",
                    spec={"name": "x", "params": {"gamma": g}},
                    amplification=g,
                    rho1=RHO1,
                    rho2=rho2_from_gamma(RHO1, g),
                )
            )
        wire_form = json.loads(json.dumps(merged.to_dict(), allow_nan=False))
        back = PrivacyStatement.from_dict(wire_form)
        assert back == merged

    def test_unbounded_statement_serialises(self):
        statement = PrivacyStatement(
            mechanism="leaky",
            spec={"name": "leaky", "params": {}},
            amplification=math.inf,
            rho1=RHO1,
            rho2=1.0,
        )
        encoded = json.dumps(statement.to_dict(), allow_nan=False)
        back = PrivacyStatement.from_dict(json.loads(encoded))
        assert back.amplification == math.inf

    def test_prior_mismatch_raises(self):
        a = statement_for(19.0)
        b = PrivacyStatement(
            mechanism="x",
            spec={"name": "x", "params": {}},
            amplification=2.0,
            rho1=0.10,
            rho2=rho2_from_gamma(0.10, 2.0),
        )
        with pytest.raises(PrivacyError):
            a.merge(b)


# ----------------------------------------------------------------------
# micro-batcher
# ----------------------------------------------------------------------


class TestMicroBatcher:
    def test_coalesces_concurrent_submissions_in_order(self):
        batches = []
        part_lists = []

        def process(batch, parts):
            batches.append(batch.copy())
            part_lists.append(parts)
            return {"rows": int(batch.shape[0])}

        async def main():
            batcher = MicroBatcher(process, max_batch=6, max_latency=60.0)
            a = np.arange(8).reshape(4, 2)
            b = np.arange(8, 14).reshape(3, 2)
            results = await asyncio.gather(
                batcher.submit(a, context="ctx-a"), batcher.submit(b)
            )
            return a, b, results

        a, b, results = asyncio.run(main())
        # 4 + 3 >= 6 triggered one immediate flush of the concatenation.
        assert len(batches) == 1
        np.testing.assert_array_equal(
            batches[0], np.concatenate([a, b], axis=0)
        )
        (r1, off1, n1), (r2, off2, n2) = results
        assert r1 is r2
        assert (off1, n1) == (0, 4)
        assert (off2, n2) == (4, 3)
        # Contexts ride along into the parts, in arrival order.
        assert part_lists == [[(0, 4, "ctx-a"), (4, 3, None)]]

    def test_latency_flush_fires_without_reaching_max_batch(self):
        def process(batch, parts):
            return {"rows": int(batch.shape[0])}

        async def main():
            batcher = MicroBatcher(process, max_batch=10_000, max_latency=0.005)
            result, offset, n = await batcher.submit(np.zeros((3, 2), np.int64))
            return batcher.batches_flushed, offset, n

        flushed, offset, n = asyncio.run(main())
        assert flushed == 1
        assert (offset, n) == (0, 3)

    def test_pending_rows_tracks_queue_and_resets_on_flush(self):
        async def main():
            batcher = MicroBatcher(
                lambda batch, parts: None, max_batch=100, max_latency=60.0
            )
            assert batcher.pending_rows == 0
            waiter = asyncio.ensure_future(
                batcher.submit(np.zeros((7, 2), np.int64))
            )
            await asyncio.sleep(0)
            queued = batcher.pending_rows
            await batcher.drain()
            await waiter
            return queued, batcher.pending_rows

        queued, after = asyncio.run(main())
        assert queued == 7
        assert after == 0

    def test_process_failure_propagates_to_all_waiters(self):
        def process(batch, parts):
            raise RuntimeError("boom")

        async def main():
            batcher = MicroBatcher(process, max_batch=2, max_latency=60.0)
            return await asyncio.gather(
                batcher.submit(np.zeros((1, 2), np.int64)),
                batcher.submit(np.zeros((1, 2), np.int64)),
                return_exceptions=True,
            )

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ServiceError):
            MicroBatcher(lambda b, p: b, max_batch=0)
        with pytest.raises(ServiceError):
            MicroBatcher(lambda b, p: b, max_latency=-1.0)


# ----------------------------------------------------------------------
# wire schema
# ----------------------------------------------------------------------


class TestWire:
    def test_decode_records_round_trip(self, schema, data):
        rows = wire.encode_records(data.records[:10])
        decoded = wire.decode_records(schema, rows)
        np.testing.assert_array_equal(decoded, data.records[:10])

    def test_decode_rejects_bad_shapes_and_domains(self, schema):
        with pytest.raises(ServiceError):
            wire.decode_records(schema, [])
        with pytest.raises(ServiceError):
            wire.decode_records(schema, [[0, 1]])  # wrong width
        too_big = [[999] * schema.n_attributes]
        with pytest.raises(ServiceError):
            wire.decode_records(schema, too_big)
        with pytest.raises(ServiceError):
            wire.decode_records(schema, [["a"] * schema.n_attributes])

    def test_tenant_name_validation(self):
        assert wire.tenant_name({"tenant": "acme-1.prod"}) == "acme-1.prod"
        for bad in ("", "a/b", "../x", None, 7):
            with pytest.raises(ServiceError):
                wire.tenant_name({"tenant": bad})

    def test_itemset_round_trip(self, schema):
        itemset = Itemset([(0, 1), (2, 3)])
        [decoded] = wire.decode_itemsets(
            schema, [wire.encode_itemset(itemset)]
        )
        assert decoded == itemset
        with pytest.raises(ServiceError):
            wire.decode_itemsets(schema, [{"attributes": [0], "values": []}])
        with pytest.raises(ServiceError):
            wire.decode_itemsets(
                schema, [{"attributes": [99], "values": [0]}]
            )


# ----------------------------------------------------------------------
# wire framing and idempotency primitives
# ----------------------------------------------------------------------


class TestWireFraming:
    def test_frame_parse_round_trip_with_retry_after(self):
        frame = wire.frame_response(
            429,
            {"error": {"code": "overloaded"}},
            close=True,
            headers={"Retry-After": "0.25"},
        )
        status, headers, payload = wire.parse_response(frame)
        assert status == 429
        assert headers["retry-after"] == "0.25"
        assert headers["connection"] == "close"
        assert payload == {"error": {"code": "overloaded"}}
        assert b"429 Too Many Requests" in frame

    @given(
        status=st.sampled_from(sorted(wire.REASON_PHRASES)),
        payload=st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                min_size=1,
                max_size=8,
            ),
            st.one_of(
                st.integers(-(10**9), 10**9),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
                st.booleans(),
            ),
            max_size=5,
        ),
        close=st.booleans(),
        retry_after=st.one_of(
            st.none(), st.floats(min_value=0.01, max_value=10.0)
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_frame_parse_round_trip_property(
        self, status, payload, close, retry_after
    ):
        headers = (
            None if retry_after is None else {"Retry-After": f"{retry_after:g}"}
        )
        frame = wire.frame_response(
            status, payload, close=close, headers=headers
        )
        parsed_status, parsed_headers, parsed_payload = wire.parse_response(
            frame
        )
        assert parsed_status == status
        assert parsed_payload == payload
        expected = "close" if close else "keep-alive"
        assert parsed_headers["connection"] == expected
        if retry_after is not None:
            assert parsed_headers["retry-after"] == f"{retry_after:g}"

    def test_parse_rejects_torn_and_malformed_frames(self):
        frame = wire.frame_response(200, {"a": 1})
        for torn in (
            frame[:-1],  # truncated body
            frame + b"x",  # oversized body vs Content-Length
            b"HTTP/1.1 200 OK\r\nContent-Length: 2",  # torn header
            b"garbage\r\n\r\n",  # malformed status line
            b"HTTP/1.1 abc OK\r\n\r\n",  # non-numeric status
        ):
            with pytest.raises(ServiceError):
                wire.parse_response(torn)

    def test_parse_rejects_non_json_body(self):
        body = b"<html>502 Bad Gateway</html>"
        frame = (
            b"HTTP/1.1 502 Bad Gateway\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        with pytest.raises(ServiceError, match="not valid JSON"):
            wire.parse_response(frame)

    def test_idempotency_key_validation(self):
        assert wire.idempotency_key({}) is None
        assert wire.idempotency_key({"idempotency_key": "k-1"}) == "k-1"
        for bad in ("", "with space", "tab\there", "x" * 201, 7, ["k"]):
            with pytest.raises(ServiceError):
                wire.idempotency_key({"idempotency_key": bad})

    def test_payload_digest_is_canonical(self):
        a = wire.payload_digest({"x": 1, "y": [1, 2]})
        b = wire.payload_digest({"y": [1, 2], "x": 1})
        c = wire.payload_digest({"x": 1, "y": [2, 1]})
        assert a == b
        assert a != c


class TestLedgerJournal:
    def ledger(self):
        return TenantLedger(
            tenant="acme", budget=PrivacyRequirement(RHO1, 0.5)
        )

    def test_record_lookup_and_conflict(self):
        ledger = self.ledger()
        assert ledger.journal_lookup("k", "d1") is None
        ledger.journal_record("k", "d1", {"accepted": 3})
        assert ledger.journal_lookup("k", "d1") == {"accepted": 3}
        with pytest.raises(ServiceError) as excinfo:
            ledger.journal_lookup("k", "d2")
        assert excinfo.value.code == "idempotency_conflict"
        assert excinfo.value.status == 409

    def test_journal_round_trips_through_serialisation(self):
        ledger = self.ledger()
        ledger.journal_record("k1", "d1", {"accepted": 1})
        ledger.journal_record("k2", "d2", {"accepted": 2})
        revived = TenantLedger.from_dict(ledger.to_dict())
        assert revived.journal == ledger.journal
        assert list(revived.journal) == ["k1", "k2"]  # order = eviction order

    def test_journal_evicts_oldest_beyond_cap(self):
        ledger = self.ledger()
        for i in range(JOURNAL_CAP + 10):
            ledger.journal_record(f"k{i}", "d", {"i": i})
        assert len(ledger.journal) == JOURNAL_CAP
        assert "k0" not in ledger.journal
        assert f"k{JOURNAL_CAP + 9}" in ledger.journal


# ----------------------------------------------------------------------
# the HTTP service end to end
# ----------------------------------------------------------------------


class TestServiceEndToEnd:
    def test_submissions_bit_identical_to_offline(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            assert client.health()["status"] == "ok"
            # Deliberately odd partition: batch boundaries must not
            # influence the perturbation stream.
            for lo, hi in [(0, 7), (7, 130), (130, 131), (131, 400)]:
                response = client.submit("acme", data.records[lo:hi])
            assert response["spooled"] == 400
            supports = client.reconstruct(
                "acme", [{"attributes": [0], "values": [1]}]
            )["supports"]
            client.close()
            return supports

        supports = run_service(config, drive)
        seed = derive_collection_seed(config.seed, "acme", "default")
        offline = offline_perturb(schema, data, seed)
        with FrdSpool(
            schema, tmp_path / "state" / "acme" / "default.frd"
        ) as spool:
            np.testing.assert_array_equal(
                spool.records(0, 400), offline.records
            )
        estimator = MarginalInversionEstimator(
            from_spec(MechanismSpec("det-gd", {"gamma": GAMMA}), schema),
            offline.subset_counts,
            offline.n_records,
        )
        assert supports == [float(s) for s in estimator.supports([Itemset([(0, 1)])])]

    def test_restart_resumes_bit_identically(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def first_half(port):
            ServiceClient(port=port).submit("acme", data.records[:250])

        def second_half(port):
            return ServiceClient(port=port).submit("acme", data.records[250:])

        run_service(config, first_half)
        response = run_service(make_config(schema, tmp_path), second_half)
        assert response["spooled"] == 400
        seed = derive_collection_seed(config.seed, "acme", "default")
        offline = offline_perturb(schema, data, seed)
        with FrdSpool(
            schema, tmp_path / "state" / "acme" / "default.frd"
        ) as spool:
            np.testing.assert_array_equal(
                spool.records(0, 400), offline.records
            )

    def test_budget_breach_is_http_403_with_details(self, schema, data, tmp_path):
        config = make_config(
            schema, tmp_path, rho2=rho2_from_gamma(RHO1, 20.0)
        )

        def drive(port):
            client = ServiceClient(port=port)
            client.submit("acme", data.records[:10])  # opens "default"
            with pytest.raises(BudgetExceededError) as excinfo:
                client.open_collection("acme", "second")
            return excinfo.value

        error = run_service(config, drive)
        assert error.status == 403
        assert error.code == "budget_exceeded"
        assert error.details["collection"] == "second"
        assert error.details["budget_amplification"] == pytest.approx(20.0)
        assert error.details["projected_amplification"] == pytest.approx(361.0)

    def test_exhaustion_sequence_first_refusal_keeps_spend(
        self, schema, data, tmp_path
    ):
        config = make_config(
            schema, tmp_path, rho2=rho2_from_gamma(RHO1, GAMMA * GAMMA)
        )

        def drive(port):
            client = ServiceClient(port=port)
            client.submit("acme", data.records[:10], collection="a")
            client.submit("acme", data.records[10:20], collection="b")
            with pytest.raises(BudgetExceededError):
                client.submit("acme", data.records[20:30], collection="c")
            summary = client.ledger()["tenants"][0]
            ledger = client.ledger("acme")["ledger"]
            return summary, ledger

        summary, ledger = run_service(config, drive)
        assert summary["headroom"] == pytest.approx(1.0)
        assert sorted(ledger["collections"]) == ["a", "b"]
        assert ledger["collections"]["a"]["records"] == 10

    def test_stateless_perturb_matches_offline(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            return client.perturb(
                data.records[:50],
                mechanism={"name": "det-gd", "params": {"gamma": GAMMA}},
                seed=777,
            )["records"]

        perturbed = run_service(config, drive)
        offline = offline_perturb(
            schema,
            type(data)._trusted(schema, data.records[:50].copy()),
            777,
        )
        np.testing.assert_array_equal(
            np.asarray(perturbed), offline.records
        )

    def test_mine_endpoint_returns_frequent_itemsets(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            client.submit("acme", data.records)
            return client.mine("acme", min_support=0.4, max_length=1)

        result = run_service(config, drive)
        assert result["n_records"] == 400
        [level] = result["itemsets"]
        assert level["length"] == 1
        assert all(
            entry["support"] >= 0.4 for entry in level["itemsets"]
        )

    def test_unknown_paths_and_bad_json_are_structured(self, schema, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            import http.client

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/nope")
            missing = json.loads(conn.getresponse().read())
            conn.request(
                "POST",
                "/v1/submit",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            bad = json.loads(conn.getresponse().read())
            conn.close()
            return missing, bad

        missing, bad = run_service(config, drive)
        assert missing["error"]["code"] == "not_found"
        assert bad["error"]["code"] == "bad_request"

    def test_auto_register_off_refuses_unknown_tenant(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path, auto_register=False)

        def drive(port):
            client = ServiceClient(port=port)
            with pytest.raises(ServiceError) as excinfo:
                client.submit("stranger", data.records[:5])
            assert excinfo.value.code == "unknown_tenant"
            # Explicit registration then works.
            client.register_tenant("known")
            client.open_collection("known", "c")
            response = client.submit("known", data.records[:5], collection="c")
            return response

        assert run_service(config, drive)["accepted"] == 5

    def test_torn_spool_recovery_resumes_consistently(self, schema, data, tmp_path):
        """Crash mid-append: a torn column plus a stale ledger ack must
        recover to a consistent prefix and keep the stream bit-exact."""
        config = make_config(schema, tmp_path)

        def drive(port):
            ServiceClient(port=port).submit("acme", data.records[:250])

        run_service(config, drive)
        spool_path = tmp_path / "state" / "acme" / "default.frd"
        torn = sorted(spool_path.parent.glob("default.frd.col*.spool"))[-1]
        torn.write_bytes(torn.read_bytes()[:-1])

        def resume(port):
            client = ServiceClient(port=port)
            status = client.ledger("acme")["ledger"]["collections"]["default"]
            # Recovery dropped the torn tail row.
            assert status["records"] == 249
            client.submit("acme", data.records[249:])
            return client.ledger("acme")["ledger"]["collections"]["default"]

        status = run_service(make_config(schema, tmp_path), resume)
        assert status["records"] == 400
        seed = derive_collection_seed(config.seed, "acme", "default")
        offline = offline_perturb(schema, data, seed)
        with FrdSpool(schema, spool_path) as spool:
            np.testing.assert_array_equal(
                spool.records(0, 400), offline.records
            )


# ----------------------------------------------------------------------
# exactly-once submission
# ----------------------------------------------------------------------


class TestExactlyOnce:
    def test_keyed_submit_replays_identically(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            first = client.submit(
                "acme", data.records[:30], idempotency_key="sub-1",
                return_records=True,
            )
            again = client.submit(
                "acme", data.records[:30], idempotency_key="sub-1",
                return_records=True,
            )
            ledger = client.ledger("acme")["ledger"]
            client.close()
            return first, again, ledger

        first, again, ledger = run_service(config, drive)
        assert "replayed" not in first
        assert again["replayed"] is True
        assert (again["start"], again["stop"]) == (first["start"], first["stop"])
        # The replay re-reads the same perturbed rows from the spool.
        assert again["records"] == first["records"]
        # Rows were spooled exactly once.
        assert ledger["collections"]["default"]["records"] == 30

    def test_key_reuse_with_different_payload_is_409(
        self, schema, data, tmp_path
    ):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            client.submit("acme", data.records[:10], idempotency_key="k")
            with pytest.raises(ServiceError) as excinfo:
                client.submit("acme", data.records[10:30], idempotency_key="k")
            client.close()
            return excinfo.value

        error = run_service(config, drive)
        assert error.code == "idempotency_conflict"
        assert error.status == 409

    def test_journal_survives_restart(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def first_run(port):
            client = ServiceClient(port=port)
            response = client.submit(
                "acme", data.records[:25], idempotency_key="boot-1"
            )
            client.close()
            return response

        def second_run(port):
            client = ServiceClient(port=port)
            response = client.submit(
                "acme", data.records[:25], idempotency_key="boot-1"
            )
            status = client.ledger("acme")["ledger"]["collections"]["default"]
            client.close()
            return response, status

        first = run_service(config, first_run)
        again, status = run_service(make_config(schema, tmp_path), second_run)
        assert again["replayed"] is True
        assert (again["start"], again["stop"]) == (first["start"], first["stop"])
        assert status["records"] == 25

    def test_keyed_open_collection_charges_once(self, schema, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            first = client.open_collection(
                "acme", "c1", idempotency_key="open-1"
            )
            again = client.open_collection(
                "acme", "c1", idempotency_key="open-1"
            )
            summary = client.ledger("acme")["ledger"]
            client.close()
            return first, again, summary

        first, again, summary = run_service(config, drive)
        assert again["replayed"] is True
        assert again["seed"] == first["seed"]
        assert list(summary["collections"]) == ["c1"]
        # Replay did not double-charge the cumulative statement (a
        # double charge would square the amplification to 361).
        assert summary["cumulative"]["amplification"] == pytest.approx(GAMMA)

    def test_keyed_stateless_perturb_replays(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            first = client.perturb(
                data.records[:20], seed=11, idempotency_key="p-1"
            )
            again = client.perturb(
                data.records[:20], seed=11, idempotency_key="p-1"
            )
            with pytest.raises(ServiceError) as excinfo:
                client.perturb(
                    data.records[:20], seed=12, idempotency_key="p-1"
                )
            client.close()
            return first, again, excinfo.value

        first, again, error = run_service(config, drive)
        assert again["replayed"] is True
        assert again["records"] == first["records"]
        assert error.code == "idempotency_conflict"

    def test_concurrent_duplicate_keys_spool_once(self, schema, data, tmp_path):
        """Two clients racing the same key (a blackholed response plus an
        eager retry) must share one batch slot, not spool rows twice."""
        config = make_config(schema, tmp_path, max_latency=0.2)

        def drive(port):
            rows = data.records[:15]
            results = []

            def submit():
                client = ServiceClient(port=port)
                results.append(
                    client.submit("acme", rows, idempotency_key="race")
                )
                client.close()

            threads = [threading.Thread(target=submit) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            client = ServiceClient(port=port)
            status = client.ledger("acme")["ledger"]["collections"]["default"]
            client.close()
            return results, status

        results, status = run_service(config, drive)
        assert len(results) == 4
        spans = {(r["start"], r["stop"]) for r in results}
        assert spans == {(0, 15)}
        assert status["records"] == 15


# ----------------------------------------------------------------------
# admission control and load shedding
# ----------------------------------------------------------------------


class TestAdmissionControl:
    def test_inflight_limit_sheds_with_retry_after(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path, max_inflight=0)

        def drive(port):
            client = ServiceClient(port=port)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                client.submit("acme", data.records[:5])
            health = client.health()
            client.close()
            return excinfo.value, health

        error, health = run_service(config, drive)
        assert error.status == 429
        assert error.code == "overloaded"
        assert error.details["reason"] == "max_inflight"
        assert error.retry_after is not None and error.retry_after > 0
        admission = health["admission"]
        assert admission["shed_inflight"] == 1
        assert admission["shed_total"] == 1
        assert admission["max_inflight"] == 0

    def test_shed_response_carries_retry_after_header(self, schema, tmp_path):
        config = make_config(schema, tmp_path, max_inflight=0)

        def drive(port):
            import http.client

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request(
                "POST",
                "/v1/tenants",
                body=json.dumps({"tenant": "acme"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            header = response.getheader("Retry-After")
            status = response.status
            response.read()
            conn.close()
            return status, header

        status, header = run_service(config, drive)
        assert status == 429
        assert header is not None and float(header) > 0

    def test_gets_pass_even_when_overloaded(self, schema, tmp_path):
        config = make_config(schema, tmp_path, max_inflight=0)

        def drive(port):
            client = ServiceClient(port=port)
            health = client.health()
            ledger = client.ledger()
            client.close()
            return health, ledger

        health, ledger = run_service(config, drive)
        assert health["status"] == "ok"
        assert ledger["tenants"] == []

    def test_queued_rows_limit_sheds_submissions(self, schema, data, tmp_path):
        config = make_config(
            schema, tmp_path, max_latency=0.5, max_queued_rows=1
        )

        def drive(port):
            first_client = ServiceClient(port=port)
            probe = ServiceClient(port=port)
            outcome = {}

            def first():
                outcome["first"] = first_client.submit(
                    "acme", data.records[:5]
                )

            thread = threading.Thread(target=first)
            thread.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if probe.health()["admission"]["queued_rows"] >= 1:
                    break
                time.sleep(0.005)
            else:
                raise AssertionError("first submission never queued")
            with pytest.raises(ServiceOverloadedError) as excinfo:
                probe.submit("acme", data.records[5:10])
            thread.join()
            admission = probe.health()["admission"]
            first_client.close()
            probe.close()
            return outcome["first"], excinfo.value, admission

        first, error, admission = run_service(config, drive)
        assert first["accepted"] == 5
        assert error.details["reason"] == "max_queued_rows"
        assert admission["shed_queued"] >= 1
        # The shed happened before any state change: only the admitted
        # submission's rows exist.
        assert first["spooled"] == 5


# ----------------------------------------------------------------------
# client retry policy and typed transport errors
# ----------------------------------------------------------------------


def _silent_listener():
    """A bound socket that accepts connections but never responds."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    accepted = []
    stop = threading.Event()

    def accept_loop():
        listener.settimeout(0.05)
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            accepted.append(conn)

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()

    def close():
        stop.set()
        thread.join()
        for conn in accepted:
            conn.close()
        listener.close()

    return listener.getsockname()[1], accepted, close


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.5, seed=42
        )
        delays_a = [policy.delay(k, random.Random(42)) for k in range(1, 6)]
        delays_b = [policy.delay(k, random.Random(42)) for k in range(1, 6)]
        assert delays_a == delays_b  # same seed, same schedule
        rng = random.Random(42)
        for attempt, delay in enumerate(delays_a, start=1):
            nominal = min(0.5, 0.1 * 2.0 ** (attempt - 1))
            assert nominal / 2 <= delay <= nominal

    def test_rejects_bad_parameters(self):
        with pytest.raises(ServiceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServiceError):
            RetryPolicy(jitter=1.5)

    def test_connection_refused_maps_to_unavailable(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()  # nothing listens here now
        client = ServiceClient(port=port, timeout=1.0)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.health()
        assert excinfo.value.code == "unavailable"
        assert excinfo.value.status == 503

    def test_socket_timeout_maps_to_timeout_error(self):
        port, _accepted, close = _silent_listener()
        try:
            client = ServiceClient(port=port, timeout=0.1)
            with pytest.raises(ServiceTimeoutError) as excinfo:
                client.health()
            assert excinfo.value.code == "timeout"
            assert excinfo.value.status == 504
        finally:
            close()

    def test_unkeyed_write_is_never_retried(self, schema, data):
        port, accepted, close = _silent_listener()
        try:
            client = ServiceClient(port=port, timeout=0.15)
            with pytest.raises(ServiceTimeoutError):
                client.submit("acme", data.records[:3])
            writes = len(accepted)
            # GETs are idempotent: the reconnect fallback tries twice.
            with pytest.raises(ServiceTimeoutError):
                client.health()
            reads = len(accepted) - writes
        finally:
            close()
        assert writes == 1
        assert reads == 2

    def test_deadline_exceeded_wraps_last_error(self):
        port, _accepted, close = _silent_listener()
        try:
            client = ServiceClient(
                port=port,
                timeout=5.0,
                retry=RetryPolicy(
                    max_attempts=50,
                    base_delay=0.0,
                    jitter=0.0,
                    deadline=0.3,
                    attempt_timeout=0.05,
                ),
            )
            start = time.monotonic()
            with pytest.raises(DeadlineExceededError) as excinfo:
                client.health()
            elapsed = time.monotonic() - start
        finally:
            close()
        assert excinfo.value.attempts >= 2
        assert elapsed < 2.0  # deadline cut the 50-attempt budget short

    def test_policy_retries_sheds_then_raises_overloaded(
        self, schema, data, tmp_path
    ):
        config = make_config(schema, tmp_path, max_inflight=0)

        def drive(port):
            client = ServiceClient(
                port=port,
                retry=RetryPolicy(
                    max_attempts=3, base_delay=0.001, jitter=0.0, seed=3
                ),
            )
            with pytest.raises(ServiceOverloadedError):
                client.submit("acme", data.records[:5])
            admission = client.health()["admission"]
            client.close()
            return admission

        admission = run_service(config, drive)
        # Every attempt of the 3-attempt budget was shed and counted.
        assert admission["shed_inflight"] == 3

    def test_policy_recovers_once_load_clears(self, schema, data, tmp_path):
        """A shed submission retried under the policy lands exactly once
        when capacity returns (429 -> backoff -> 200)."""
        config = make_config(
            schema, tmp_path, max_latency=0.15, max_queued_rows=1
        )

        def drive(port):
            blocker = ServiceClient(port=port)
            retrier = ServiceClient(
                port=port,
                retry=RetryPolicy(max_attempts=8, base_delay=0.01, seed=9),
            )
            outcome = {}

            def first():
                outcome["first"] = blocker.submit("acme", data.records[:5])

            thread = threading.Thread(target=first)
            thread.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if retrier.health()["admission"]["queued_rows"] >= 1:
                    break
                time.sleep(0.002)
            response = retrier.submit("acme", data.records[5:12])
            thread.join()
            status = retrier.ledger("acme")["ledger"]["collections"]["default"]
            blocker.close()
            retrier.close()
            return outcome["first"], response, status

        first, response, status = run_service(config, drive)
        assert first["accepted"] == 5
        assert response["accepted"] == 7
        assert status["records"] == 12

    def test_auto_keys_only_under_active_policy(self):
        assert ServiceClient()._auto_key() is None
        keyed = ServiceClient(retry=RetryPolicy())
        first, second = keyed._auto_key(), keyed._auto_key()
        assert first and second and first != second

    def test_non_json_error_body_is_bad_gateway(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def serve_once():
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.sendall(
                b"HTTP/1.1 500 Internal Server Error\r\n"
                b"Content-Length: 9\r\n"
                b"Connection: close\r\n\r\nnot json!"
            )
            conn.close()

        thread = threading.Thread(target=serve_once, daemon=True)
        thread.start()
        try:
            client = ServiceClient(port=port, timeout=2.0)
            with pytest.raises(ServiceError) as excinfo:
                client.health()
            assert excinfo.value.code == "bad_gateway"
            assert excinfo.value.status == 502
        finally:
            thread.join()
            listener.close()


# ----------------------------------------------------------------------
# shutdown drain and protocol-level refusals
# ----------------------------------------------------------------------


class TestServerShutdown:
    def test_stop_closes_idle_keepalive_immediately(self, schema, tmp_path):
        """An idle keep-alive connection must not hold shutdown for the
        drain deadline."""
        config = make_config(schema, tmp_path, drain_deadline=30.0)

        async def main():
            server = ServiceServer(PerturbationService(config), port=0)
            port = await server.start()
            loop = asyncio.get_running_loop()

            def connect_idle():
                client = ServiceClient(port=port)
                client.health()  # leaves a live keep-alive socket behind
                return client

            client = await loop.run_in_executor(None, connect_idle)
            start = time.monotonic()
            await server.stop()
            elapsed = time.monotonic() - start
            client.close()
            return elapsed

        assert asyncio.run(main()) < 5.0

    def test_stop_drains_inflight_submission(self, schema, data, tmp_path):
        """A submission waiting on a latency flush when stop() begins
        still gets its rows spooled and its response written."""
        config = make_config(
            schema, tmp_path, max_latency=0.3, drain_deadline=10.0
        )

        async def main():
            server = ServiceServer(PerturbationService(config), port=0)
            port = await server.start()
            loop = asyncio.get_running_loop()

            def submit():
                client = ServiceClient(port=port)
                try:
                    return client.submit("acme", data.records[:8])
                finally:
                    client.close()

            pending = loop.run_in_executor(None, submit)
            while server.service.queued_rows() == 0:
                await asyncio.sleep(0.005)
            await server.stop()
            return await pending

        response = asyncio.run(main())
        assert response["accepted"] == 8
        assert response["spooled"] == 8

    def test_oversized_content_length_is_structured_413(self, schema, tmp_path):
        from repro.service.server import MAX_BODY_BYTES

        config = make_config(schema, tmp_path)

        def drive(port):
            import http.client

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.putrequest("POST", "/v1/submit")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            status = response.status
            body = json.loads(response.read())
            header = response.getheader("Connection")
            conn.close()
            return status, body, header

        status, body, connection = run_service(config, drive)
        assert status == 413
        assert body["error"]["code"] == "body_too_large"
        # Framing downstream of a protocol error is suspect: close.
        assert connection == "close"


# ----------------------------------------------------------------------
# sequential stream (the determinism primitive)
# ----------------------------------------------------------------------


class TestSequentialStream:
    def test_any_partition_is_bit_identical(self, schema, data):
        engine = from_spec(MechanismSpec("det-gd", {"gamma": GAMMA}), schema)
        offline = engine.perturb(data, seed=99).records
        for edges in ([0, 400], [0, 1, 400], [0, 123, 124, 300, 400]):
            stream = SequentialPerturbStream(engine, seed=99)
            parts = [
                stream.perturb_batch(data.records[lo:hi])
                for lo, hi in zip(edges, edges[1:])
            ]
            np.testing.assert_array_equal(
                np.concatenate(parts, axis=0), offline
            )

    def test_skip_records_fast_forwards_exactly(self, schema, data):
        engine = from_spec(MechanismSpec("det-gd", {"gamma": GAMMA}), schema)
        offline = engine.perturb(data, seed=99).records
        stream = SequentialPerturbStream(engine, seed=99)
        stream.skip_records(250)
        tail = stream.perturb_batch(data.records[250:])
        np.testing.assert_array_equal(tail, offline[250:])
