"""The always-on service: spool durability, ledgers, batching, HTTP.

The load-bearing claims under test:

* ``FrdSpool`` appends survive crashes: recovery truncates to complete
  (and acknowledged) rows, including a torn column file;
* the per-tenant ledger charges, persists atomically, refuses over
  budget with a structured error, allows exact exhaustion, and never
  silently resets corrupt state;
* statement merging is order-invariant and JSON round-trips exactly
  (Hypothesis);
* the micro-batcher coalesces submissions in arrival order and flushes
  on both thresholds;
* the HTTP service's perturbation is bit-identical to the offline
  engine for any submission partition, across restarts, and refuses
  budget breaches with HTTP 403.
"""

from __future__ import annotations

import asyncio
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.privacy import PrivacyRequirement, rho2_from_gamma
from repro.data import census_schema, generate_census
from repro.data.io import FrdSpool
from repro.exceptions import BudgetExceededError, PrivacyError, ServiceError
from repro.mechanisms import MechanismSpec, PrivacyAccountant, from_spec
from repro.mechanisms.accountant import PrivacyStatement
from repro.mechanisms.base import MarginalInversionEstimator
from repro.mining.itemsets import Itemset
from repro.pipeline.batch import SequentialPerturbStream
from repro.service import (
    LedgerStore,
    MicroBatcher,
    PerturbationService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    derive_collection_seed,
)
from repro.service import wire

RHO1 = 0.05
GAMMA = 19.0


@pytest.fixture(scope="module")
def schema():
    return census_schema()


@pytest.fixture(scope="module")
def data(schema):
    return generate_census(400, seed=5)


def make_config(schema, tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        schema=schema,
        data_dir=str(tmp_path / "state"),
        rho1=RHO1,
        rho2=rho2_from_gamma(RHO1, GAMMA),
        mechanism={"name": "det-gd", "params": {"gamma": GAMMA}},
        seed=1234,
        max_latency=0.002,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def run_service(config: ServiceConfig, client_fn):
    """Start a real server, run ``client_fn(port)`` in a thread, stop."""

    async def main():
        server = ServiceServer(PerturbationService(config), port=0)
        port = await server.start()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, client_fn, port)
        finally:
            await server.stop()

    return asyncio.run(main())


def offline_perturb(schema, data, seed):
    engine = from_spec(MechanismSpec("det-gd", {"gamma": GAMMA}), schema)
    return engine.perturb(data, seed=seed)


# ----------------------------------------------------------------------
# FrdSpool durability
# ----------------------------------------------------------------------


class TestFrdSpool:
    def test_append_and_read_back(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            start, stop = spool.append(data.records[:150])
            assert (start, stop) == (0, 150)
            start, stop = spool.append(data.records[150:])
            assert (start, stop) == (150, 400)
            assert len(spool) == 400
            np.testing.assert_array_equal(
                spool.records(0, 400), data.records
            )
            np.testing.assert_array_equal(
                spool.records(150, 160), data.records[150:160]
            )

    def test_reopen_recovers_all_rows(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            spool.append(data.records)
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            assert spool.n_records == 400
            np.testing.assert_array_equal(spool.records(0, 400), data.records)

    def test_torn_column_truncates_to_complete_rows(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            spool.append(data.records)
        # Tear the last column file mid-record: recovery must drop the
        # incomplete tail from EVERY column.
        torn = sorted(tmp_path.glob("a.frd.col*.spool"))[-1]
        torn.write_bytes(torn.read_bytes()[:-3])
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            assert spool.n_records < 400
            complete = spool.n_records
            np.testing.assert_array_equal(
                spool.records(0, complete), data.records[:complete]
            )
            # The spool stays appendable after recovery.
            spool.append(data.records[complete:])
            np.testing.assert_array_equal(spool.records(0, 400), data.records)

    def test_expected_records_caps_recovery(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            spool.append(data.records)
        # An unacknowledged fsynced tail: the ledger only acked 300.
        with FrdSpool(schema, tmp_path / "a.frd", expected_records=300) as spool:
            assert spool.n_records == 300
            np.testing.assert_array_equal(
                spool.records(0, 300), data.records[:300]
            )

    def test_to_dataset_and_checkpoint(self, schema, data, tmp_path):
        with FrdSpool(schema, tmp_path / "a.frd") as spool:
            spool.append(data.records)
            dataset = spool.to_dataset()
            assert dataset.n_records == 400
            np.testing.assert_array_equal(dataset.records, data.records)
            spool.checkpoint()
            from repro.data import open_frd

            frd = open_frd(tmp_path / "a.frd")
            np.testing.assert_array_equal(frd.records(0, 400), data.records)
            # Still appendable after the checkpoint.
            spool.append(data.records[:10])
            assert spool.n_records == 410


# ----------------------------------------------------------------------
# ledger accounting
# ----------------------------------------------------------------------


def statement_for(gamma: float) -> PrivacyStatement:
    schema = census_schema()
    mechanism = from_spec(MechanismSpec("det-gd", {"gamma": gamma}), schema)
    return PrivacyAccountant(rho1=RHO1).statement(mechanism)


class TestLedger:
    def budget(self, gamma: float) -> PrivacyRequirement:
        return PrivacyRequirement(RHO1, rho2_from_gamma(RHO1, gamma))

    def test_charge_accumulates_product(self, tmp_path):
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(400.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        ledger.charge("b", statement_for(19.0), seed=2)
        assert ledger.cumulative_amplification() == pytest.approx(361.0)
        assert ledger.cumulative_rho2() == pytest.approx(
            rho2_from_gamma(RHO1, 361.0)
        )

    def test_refusal_is_structured_and_leaves_state(self, tmp_path):
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(20.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        before = ledger.to_dict()
        with pytest.raises(BudgetExceededError) as excinfo:
            ledger.charge("b", statement_for(19.0), seed=2)
        error = excinfo.value
        assert error.status == 403
        assert error.code == "budget_exceeded"
        assert error.details["tenant"] == "t"
        assert error.details["projected_amplification"] == pytest.approx(361.0)
        # The refused charge must not have touched anything.
        assert ledger.to_dict() == before
        assert "b" not in ledger.collections

    def test_exact_exhaustion_is_admitted(self, tmp_path):
        """A sequence that lands exactly on the budget: charge, charge,
        refuse -- with the final refusal keeping the earlier spend."""
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(19.0 * 19.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        ledger.charge("b", statement_for(19.0), seed=2)  # exactly exhausts
        assert ledger.headroom() == pytest.approx(1.0)
        with pytest.raises(BudgetExceededError):
            ledger.charge("c", statement_for(1.5), seed=3)
        assert sorted(ledger.collections) == ["a", "b"]

    def test_duplicate_collection_conflicts(self, tmp_path):
        ledger = LedgerStore(tmp_path).create("t", self.budget(400.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        with pytest.raises(ServiceError) as excinfo:
            ledger.charge("a", statement_for(2.0), seed=2)
        assert excinfo.value.code == "collection_exists"
        assert excinfo.value.status == 409

    def test_persist_and_reload_bitwise(self, tmp_path):
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(400.0))
        ledger.charge("a", statement_for(19.0), seed=1)
        ledger.charge("b", statement_for(3.0), seed=2)
        ledger.collections["a"].records = 123
        store.save(ledger)
        reloaded = store.load("t")
        assert reloaded.to_dict() == ledger.to_dict()
        assert reloaded.cumulative_rho2() == ledger.cumulative_rho2()
        assert store.tenants() == ["t"]

    def test_corrupt_ledger_never_resets(self, tmp_path):
        store = LedgerStore(tmp_path)
        ledger = store.create("t", self.budget(400.0))
        path = store.tenant_dir("t") / "ledger.json"
        path.write_text("{ not json")
        with pytest.raises(ServiceError) as excinfo:
            store.load("t")
        assert excinfo.value.code == "ledger_corrupt"
        assert excinfo.value.status == 500

    def test_prior_mismatch_rejected(self, tmp_path):
        ledger = LedgerStore(tmp_path).create(
            "t", PrivacyRequirement(0.10, 0.50)
        )
        with pytest.raises(ServiceError):
            ledger.charge("a", statement_for(19.0), seed=1)  # rho1=0.05


# ----------------------------------------------------------------------
# statement merge: order invariance + serialisation (Hypothesis)
# ----------------------------------------------------------------------


gammas = st.lists(
    st.floats(min_value=1.01, max_value=50.0, allow_nan=False),
    min_size=2,
    max_size=6,
)


class TestStatementMerge:
    @given(gammas=gammas, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_merge_order_never_changes_reported_rho(self, gammas, seed):
        statements = [
            PrivacyStatement(
                mechanism=f"m{i}",
                spec={"name": f"m{i}", "params": {}},
                amplification=g,
                rho1=RHO1,
                rho2=rho2_from_gamma(RHO1, g),
            )
            for i, g in enumerate(gammas)
        ]
        rng = np.random.default_rng(seed)

        def fold(order):
            items = [statements[i] for i in order]
            merged = items[0]
            for item in items[1:]:
                merged = merged.merge(item)
            return merged

        left = fold(range(len(statements)))
        shuffled = fold(rng.permutation(len(statements)))
        assert left.amplification == shuffled.amplification
        assert left.rho2 == shuffled.rho2
        assert left.rho1 == shuffled.rho1
        assert left.factors == shuffled.factors
        # And a right-fold via a different tree shape: pairwise halves.
        if len(statements) >= 4:
            half = len(statements) // 2
            tree = fold(range(half)).merge(fold(range(half, len(statements))))
            assert tree.amplification == left.amplification
            assert tree.rho2 == left.rho2

    @given(gammas=gammas)
    @settings(max_examples=40, deadline=None)
    def test_statement_json_round_trip_exact(self, gammas):
        merged = statement_for(19.0)
        for g in gammas:
            merged = merged.merge(
                PrivacyStatement(
                    mechanism="x",
                    spec={"name": "x", "params": {"gamma": g}},
                    amplification=g,
                    rho1=RHO1,
                    rho2=rho2_from_gamma(RHO1, g),
                )
            )
        wire_form = json.loads(json.dumps(merged.to_dict(), allow_nan=False))
        back = PrivacyStatement.from_dict(wire_form)
        assert back == merged

    def test_unbounded_statement_serialises(self):
        statement = PrivacyStatement(
            mechanism="leaky",
            spec={"name": "leaky", "params": {}},
            amplification=math.inf,
            rho1=RHO1,
            rho2=1.0,
        )
        encoded = json.dumps(statement.to_dict(), allow_nan=False)
        back = PrivacyStatement.from_dict(json.loads(encoded))
        assert back.amplification == math.inf

    def test_prior_mismatch_raises(self):
        a = statement_for(19.0)
        b = PrivacyStatement(
            mechanism="x",
            spec={"name": "x", "params": {}},
            amplification=2.0,
            rho1=0.10,
            rho2=rho2_from_gamma(0.10, 2.0),
        )
        with pytest.raises(PrivacyError):
            a.merge(b)


# ----------------------------------------------------------------------
# micro-batcher
# ----------------------------------------------------------------------


class TestMicroBatcher:
    def test_coalesces_concurrent_submissions_in_order(self):
        batches = []

        def process(batch):
            batches.append(batch.copy())
            return {"rows": int(batch.shape[0])}

        async def main():
            batcher = MicroBatcher(process, max_batch=6, max_latency=60.0)
            a = np.arange(8).reshape(4, 2)
            b = np.arange(8, 14).reshape(3, 2)
            results = await asyncio.gather(batcher.submit(a), batcher.submit(b))
            return a, b, results

        a, b, results = asyncio.run(main())
        # 4 + 3 >= 6 triggered one immediate flush of the concatenation.
        assert len(batches) == 1
        np.testing.assert_array_equal(
            batches[0], np.concatenate([a, b], axis=0)
        )
        (r1, off1, n1), (r2, off2, n2) = results
        assert r1 is r2
        assert (off1, n1) == (0, 4)
        assert (off2, n2) == (4, 3)

    def test_latency_flush_fires_without_reaching_max_batch(self):
        def process(batch):
            return {"rows": int(batch.shape[0])}

        async def main():
            batcher = MicroBatcher(process, max_batch=10_000, max_latency=0.005)
            result, offset, n = await batcher.submit(np.zeros((3, 2), np.int64))
            return batcher.batches_flushed, offset, n

        flushed, offset, n = asyncio.run(main())
        assert flushed == 1
        assert (offset, n) == (0, 3)

    def test_process_failure_propagates_to_all_waiters(self):
        def process(batch):
            raise RuntimeError("boom")

        async def main():
            batcher = MicroBatcher(process, max_batch=2, max_latency=60.0)
            return await asyncio.gather(
                batcher.submit(np.zeros((1, 2), np.int64)),
                batcher.submit(np.zeros((1, 2), np.int64)),
                return_exceptions=True,
            )

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ServiceError):
            MicroBatcher(lambda b: b, max_batch=0)
        with pytest.raises(ServiceError):
            MicroBatcher(lambda b: b, max_latency=-1.0)


# ----------------------------------------------------------------------
# wire schema
# ----------------------------------------------------------------------


class TestWire:
    def test_decode_records_round_trip(self, schema, data):
        rows = wire.encode_records(data.records[:10])
        decoded = wire.decode_records(schema, rows)
        np.testing.assert_array_equal(decoded, data.records[:10])

    def test_decode_rejects_bad_shapes_and_domains(self, schema):
        with pytest.raises(ServiceError):
            wire.decode_records(schema, [])
        with pytest.raises(ServiceError):
            wire.decode_records(schema, [[0, 1]])  # wrong width
        too_big = [[999] * schema.n_attributes]
        with pytest.raises(ServiceError):
            wire.decode_records(schema, too_big)
        with pytest.raises(ServiceError):
            wire.decode_records(schema, [["a"] * schema.n_attributes])

    def test_tenant_name_validation(self):
        assert wire.tenant_name({"tenant": "acme-1.prod"}) == "acme-1.prod"
        for bad in ("", "a/b", "../x", None, 7):
            with pytest.raises(ServiceError):
                wire.tenant_name({"tenant": bad})

    def test_itemset_round_trip(self, schema):
        itemset = Itemset([(0, 1), (2, 3)])
        [decoded] = wire.decode_itemsets(
            schema, [wire.encode_itemset(itemset)]
        )
        assert decoded == itemset
        with pytest.raises(ServiceError):
            wire.decode_itemsets(schema, [{"attributes": [0], "values": []}])
        with pytest.raises(ServiceError):
            wire.decode_itemsets(
                schema, [{"attributes": [99], "values": [0]}]
            )


# ----------------------------------------------------------------------
# the HTTP service end to end
# ----------------------------------------------------------------------


class TestServiceEndToEnd:
    def test_submissions_bit_identical_to_offline(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            assert client.health()["status"] == "ok"
            # Deliberately odd partition: batch boundaries must not
            # influence the perturbation stream.
            for lo, hi in [(0, 7), (7, 130), (130, 131), (131, 400)]:
                response = client.submit("acme", data.records[lo:hi])
            assert response["spooled"] == 400
            supports = client.reconstruct(
                "acme", [{"attributes": [0], "values": [1]}]
            )["supports"]
            client.close()
            return supports

        supports = run_service(config, drive)
        seed = derive_collection_seed(config.seed, "acme", "default")
        offline = offline_perturb(schema, data, seed)
        with FrdSpool(
            schema, tmp_path / "state" / "acme" / "default.frd"
        ) as spool:
            np.testing.assert_array_equal(
                spool.records(0, 400), offline.records
            )
        estimator = MarginalInversionEstimator(
            from_spec(MechanismSpec("det-gd", {"gamma": GAMMA}), schema),
            offline.subset_counts,
            offline.n_records,
        )
        assert supports == [float(s) for s in estimator.supports([Itemset([(0, 1)])])]

    def test_restart_resumes_bit_identically(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def first_half(port):
            ServiceClient(port=port).submit("acme", data.records[:250])

        def second_half(port):
            return ServiceClient(port=port).submit("acme", data.records[250:])

        run_service(config, first_half)
        response = run_service(make_config(schema, tmp_path), second_half)
        assert response["spooled"] == 400
        seed = derive_collection_seed(config.seed, "acme", "default")
        offline = offline_perturb(schema, data, seed)
        with FrdSpool(
            schema, tmp_path / "state" / "acme" / "default.frd"
        ) as spool:
            np.testing.assert_array_equal(
                spool.records(0, 400), offline.records
            )

    def test_budget_breach_is_http_403_with_details(self, schema, data, tmp_path):
        config = make_config(
            schema, tmp_path, rho2=rho2_from_gamma(RHO1, 20.0)
        )

        def drive(port):
            client = ServiceClient(port=port)
            client.submit("acme", data.records[:10])  # opens "default"
            with pytest.raises(BudgetExceededError) as excinfo:
                client.open_collection("acme", "second")
            return excinfo.value

        error = run_service(config, drive)
        assert error.status == 403
        assert error.code == "budget_exceeded"
        assert error.details["collection"] == "second"
        assert error.details["budget_amplification"] == pytest.approx(20.0)
        assert error.details["projected_amplification"] == pytest.approx(361.0)

    def test_exhaustion_sequence_first_refusal_keeps_spend(
        self, schema, data, tmp_path
    ):
        config = make_config(
            schema, tmp_path, rho2=rho2_from_gamma(RHO1, GAMMA * GAMMA)
        )

        def drive(port):
            client = ServiceClient(port=port)
            client.submit("acme", data.records[:10], collection="a")
            client.submit("acme", data.records[10:20], collection="b")
            with pytest.raises(BudgetExceededError):
                client.submit("acme", data.records[20:30], collection="c")
            summary = client.ledger()["tenants"][0]
            ledger = client.ledger("acme")["ledger"]
            return summary, ledger

        summary, ledger = run_service(config, drive)
        assert summary["headroom"] == pytest.approx(1.0)
        assert sorted(ledger["collections"]) == ["a", "b"]
        assert ledger["collections"]["a"]["records"] == 10

    def test_stateless_perturb_matches_offline(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            return client.perturb(
                data.records[:50],
                mechanism={"name": "det-gd", "params": {"gamma": GAMMA}},
                seed=777,
            )["records"]

        perturbed = run_service(config, drive)
        offline = offline_perturb(
            schema,
            type(data)._trusted(schema, data.records[:50].copy()),
            777,
        )
        np.testing.assert_array_equal(
            np.asarray(perturbed), offline.records
        )

    def test_mine_endpoint_returns_frequent_itemsets(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            client = ServiceClient(port=port)
            client.submit("acme", data.records)
            return client.mine("acme", min_support=0.4, max_length=1)

        result = run_service(config, drive)
        assert result["n_records"] == 400
        [level] = result["itemsets"]
        assert level["length"] == 1
        assert all(
            entry["support"] >= 0.4 for entry in level["itemsets"]
        )

    def test_unknown_paths_and_bad_json_are_structured(self, schema, tmp_path):
        config = make_config(schema, tmp_path)

        def drive(port):
            import http.client

            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/nope")
            missing = json.loads(conn.getresponse().read())
            conn.request(
                "POST",
                "/v1/submit",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            bad = json.loads(conn.getresponse().read())
            conn.close()
            return missing, bad

        missing, bad = run_service(config, drive)
        assert missing["error"]["code"] == "not_found"
        assert bad["error"]["code"] == "bad_request"

    def test_auto_register_off_refuses_unknown_tenant(self, schema, data, tmp_path):
        config = make_config(schema, tmp_path, auto_register=False)

        def drive(port):
            client = ServiceClient(port=port)
            with pytest.raises(ServiceError) as excinfo:
                client.submit("stranger", data.records[:5])
            assert excinfo.value.code == "unknown_tenant"
            # Explicit registration then works.
            client.register_tenant("known")
            client.open_collection("known", "c")
            response = client.submit("known", data.records[:5], collection="c")
            return response

        assert run_service(config, drive)["accepted"] == 5

    def test_torn_spool_recovery_resumes_consistently(self, schema, data, tmp_path):
        """Crash mid-append: a torn column plus a stale ledger ack must
        recover to a consistent prefix and keep the stream bit-exact."""
        config = make_config(schema, tmp_path)

        def drive(port):
            ServiceClient(port=port).submit("acme", data.records[:250])

        run_service(config, drive)
        spool_path = tmp_path / "state" / "acme" / "default.frd"
        torn = sorted(spool_path.parent.glob("default.frd.col*.spool"))[-1]
        torn.write_bytes(torn.read_bytes()[:-1])

        def resume(port):
            client = ServiceClient(port=port)
            status = client.ledger("acme")["ledger"]["collections"]["default"]
            # Recovery dropped the torn tail row.
            assert status["records"] == 249
            client.submit("acme", data.records[249:])
            return client.ledger("acme")["ledger"]["collections"]["default"]

        status = run_service(make_config(schema, tmp_path), resume)
        assert status["records"] == 400
        seed = derive_collection_seed(config.seed, "acme", "default")
        offline = offline_perturb(schema, data, seed)
        with FrdSpool(schema, spool_path) as spool:
            np.testing.assert_array_equal(
                spool.records(0, 400), offline.records
            )


# ----------------------------------------------------------------------
# sequential stream (the determinism primitive)
# ----------------------------------------------------------------------


class TestSequentialStream:
    def test_any_partition_is_bit_identical(self, schema, data):
        engine = from_spec(MechanismSpec("det-gd", {"gamma": GAMMA}), schema)
        offline = engine.perturb(data, seed=99).records
        for edges in ([0, 400], [0, 1, 400], [0, 123, 124, 300, 400]):
            stream = SequentialPerturbStream(engine, seed=99)
            parts = [
                stream.perturb_batch(data.records[lo:hi])
                for lo, hi in zip(edges, edges[1:])
            ]
            np.testing.assert_array_equal(
                np.concatenate(parts, axis=0), offline
            )

    def test_skip_records_fast_forwards_exactly(self, schema, data):
        engine = from_spec(MechanismSpec("det-gd", {"gamma": GAMMA}), schema)
        offline = engine.perturb(data, seed=99).records
        stream = SequentialPerturbStream(engine, seed=99)
        stream.skip_records(250)
        tail = stream.perturb_batch(data.records[250:])
        np.testing.assert_array_equal(tail, offline[250:])
