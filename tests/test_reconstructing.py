"""Tests for repro.mining.reconstructing (mechanism drivers)."""

import pytest

from repro.mining.apriori import AprioriResult
from repro.mining.reconstructing import (
    CutAndPasteMiner,
    DetGDMiner,
    MaskMiner,
    RanGDMiner,
    make_miner,
    mine_exact,
)


class TestFactory:
    def test_names(self, survey_schema):
        assert isinstance(make_miner("det-gd", survey_schema, 19.0), DetGDMiner)
        assert isinstance(make_miner("RAN-GD", survey_schema, 19.0), RanGDMiner)
        assert isinstance(make_miner("mask", survey_schema, 19.0), MaskMiner)
        assert isinstance(make_miner("C&P", survey_schema, 19.0), CutAndPasteMiner)
        assert isinstance(
            make_miner("cut-and-paste", survey_schema, 19.0), CutAndPasteMiner
        )

    def test_unknown_name(self, survey_schema):
        with pytest.raises(ValueError):
            make_miner("dp", survey_schema, 19.0)

    def test_kwargs_forwarded(self, survey_schema):
        miner = make_miner("ran-gd", survey_schema, 19.0, relative_alpha=0.25)
        assert miner.alpha == pytest.approx(
            0.25 * 19.0 / (19.0 + survey_schema.joint_size - 1)
        )


class TestDrivers:
    @pytest.mark.parametrize("name", ["det-gd", "ran-gd", "mask", "c&p"])
    def test_mine_returns_result(self, name, survey_schema, survey_dataset):
        miner = make_miner(name, survey_schema, 19.0)
        result = miner.mine(survey_dataset, min_support=0.10, seed=0)
        assert isinstance(result, AprioriResult)
        assert result.min_support == 0.10

    def test_deterministic_with_seed(self, survey_schema, survey_dataset):
        miner = DetGDMiner(survey_schema, 19.0)
        a = miner.mine(survey_dataset, 0.10, seed=5)
        b = miner.mine(survey_dataset, 0.10, seed=5)
        assert a.frequent() == b.frequent()

    def test_high_gamma_recovers_exact_mining(self, survey_schema, survey_dataset):
        """With a huge gamma (nearly no perturbation), DET-GD mining
        converges to exact mining."""
        miner = DetGDMiner(survey_schema, gamma=1e6)
        mined = miner.mine(survey_dataset, 0.10, seed=1)
        truth = mine_exact(survey_dataset, 0.10)
        assert set(mined.frequent()) == set(truth.frequent())

    def test_mask_p_configured_from_gamma(self, survey_schema):
        miner = MaskMiner(survey_schema, 19.0)
        assert miner.p == pytest.approx(
            19.0 ** (1 / 6) / (1 + 19.0 ** (1 / 6))
        )

    def test_cp_rho_configured_from_gamma(self, survey_schema):
        miner = CutAndPasteMiner(survey_schema, 19.0)
        assert miner.operator.amplification() <= 19.0 * (1 + 1e-9)

    def test_perturb_exposed(self, survey_schema, survey_dataset):
        det = DetGDMiner(survey_schema, 19.0)
        perturbed = det.perturb(survey_dataset, seed=2)
        assert perturbed.schema == survey_schema

        mask_bits = MaskMiner(survey_schema, 19.0).perturb(survey_dataset, seed=3)
        assert mask_bits.shape == (survey_dataset.n_records, survey_schema.n_boolean)

    def test_mine_exact_reference(self, survey_dataset):
        result = mine_exact(survey_dataset, 0.10)
        assert result.n_frequent > 0
        assert all(
            s >= 0.10 for level in result.by_length.values() for s in level.values()
        )
