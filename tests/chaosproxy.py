"""A chaos TCP proxy: deterministic network faults between client and daemon.

The exactly-once claims of the service (idempotent submission, journal
replay, shed-before-state-change) are only provable if a test can make
the network fail in every interesting way *between* a real client and a
real ``frapp serve`` daemon.  This proxy sits on a local port, relays
each accepted connection to the upstream daemon, and applies one fault
mode per connection from a deterministic schedule:

``ok``
    Transparent bidirectional relay (keep-alive capable).
``reset``
    RST the client immediately, before anything reaches the daemon --
    the request was **never applied**.
``drop``
    Read the full request, forward nothing, FIN-close -- never applied,
    but the client saw a clean close instead of a reset.
``blackhole``
    Forward the request, swallow the daemon's entire response, then
    RST -- the request **was applied** but the client never learns it.
    The worst case for at-least-once clients; exactly-once needs the
    idempotency journal here.
``torn``
    Forward the request, send the client only half of the response
    bytes, then RST -- applied, acknowledged by a frame the client must
    reject as torn.
``delay``
    Forward the request, hold the response for ``delay`` seconds, then
    deliver it intact -- applied and acknowledged, just late.

The schedule is consumed one entry per accepted connection (``ok``
after exhaustion), so a retrying client walks the gauntlet entry by
entry: every transport failure closes its connection, and the retry's
fresh connection draws the next mode.  Connections are handled in
daemon threads; :meth:`ChaosProxy.stop` tears everything down.

Used by ``tests/test_chaos.py`` (the ``chaos`` CI lane); stdlib-only.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

#: Modes a schedule entry may name.
MODES = ("ok", "reset", "drop", "blackhole", "torn", "delay")

_RECV = 65536


def _rst(sock: socket.socket) -> None:
    """Close ``sock`` with an RST (linger 0) instead of an orderly FIN."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    sock.close()


def _read_http_message(sock: socket.socket) -> bytes | None:
    """One complete Content-Length-framed HTTP message from ``sock``."""
    data = b""
    while b"\r\n\r\n" not in data:
        try:
            chunk = sock.recv(_RECV)
        except OSError:
            return None
        if not chunk:
            return data or None
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(body) < length:
        try:
            chunk = sock.recv(_RECV)
        except OSError:
            break
        if not chunk:
            break
        body += chunk
    return head + b"\r\n\r\n" + body


class ChaosProxy:
    """Relay ``127.0.0.1:<port> -> upstream`` applying a fault schedule.

    Parameters
    ----------
    upstream_port:
        Where the real daemon listens (on 127.0.0.1).
    schedule:
        Fault modes (see :data:`MODES`), one consumed per accepted
        connection, ``ok`` after exhaustion.
    delay:
        Seconds the ``delay`` mode holds a response back.
    """

    def __init__(self, upstream_port: int, schedule=(), *, delay: float = 0.3):
        for mode in schedule:
            if mode not in MODES:
                raise ValueError(f"unknown chaos mode {mode!r}")
        self.upstream_port = int(upstream_port)
        self.schedule = list(schedule)
        self.delay = float(delay)
        #: Modes actually served, in connection-arrival order.
        self.served: list[str] = []
        #: Listening port, populated by :meth:`start`.
        self.port: int | None = None
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Bind, start accepting, and return the proxy's port."""
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self._listener.settimeout(0.05)
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        self._threads.append(accept)
        self.port = self._listener.getsockname()[1]
        return self.port

    def stop(self) -> None:
        """Stop accepting and join every connection thread."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5)
        if self._listener is not None:
            self._listener.close()

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _next_mode(self) -> str:
        with self._lock:
            mode = self.schedule.pop(0) if self.schedule else "ok"
            self.served.append(mode)
            return mode

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            mode = self._next_mode()
            worker = threading.Thread(
                target=self._serve, args=(client, mode), daemon=True
            )
            worker.start()
            self._threads.append(worker)

    def _upstream(self) -> socket.socket:
        upstream = socket.create_connection(
            ("127.0.0.1", self.upstream_port), timeout=30
        )
        return upstream

    def _serve(self, client: socket.socket, mode: str) -> None:
        try:
            if mode == "ok":
                self._relay(client)
            elif mode == "reset":
                _rst(client)
            elif mode == "drop":
                _read_http_message(client)
                client.close()
            else:  # blackhole / torn / delay: apply, then mangle the ack
                request = _read_http_message(client)
                if not request:
                    client.close()
                    return
                upstream = self._upstream()
                try:
                    upstream.sendall(request)
                    response = _read_http_message(upstream)
                finally:
                    upstream.close()
                if mode == "blackhole" or not response:
                    _rst(client)
                elif mode == "torn":
                    client.sendall(response[: max(1, len(response) // 2)])
                    _rst(client)
                else:  # delay
                    time.sleep(self.delay)
                    client.sendall(response)
                    client.close()
        except OSError:
            try:
                client.close()
            except OSError:
                pass

    def _relay(self, client: socket.socket) -> None:
        """Transparent bidirectional pump until either side closes."""
        upstream = self._upstream()

        def pump(source, sink):
            try:
                while True:
                    chunk = source.recv(_RECV)
                    if not chunk:
                        break
                    sink.sendall(chunk)
            except OSError:
                pass
            finally:
                for sock in (source, sink):
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass

        forward = threading.Thread(
            target=pump, args=(client, upstream), daemon=True
        )
        forward.start()
        pump(upstream, client)
        forward.join(timeout=5)
        client.close()
        upstream.close()
