"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError


class TestConstruction:
    def test_basic(self, tiny_dataset):
        assert tiny_dataset.n_records == 8
        assert len(tiny_dataset) == 8

    def test_records_are_readonly(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.records[0, 0] = 1

    def test_source_array_not_aliased(self, tiny_schema):
        source = np.zeros((3, 2), dtype=np.int64)
        dataset = CategoricalDataset(tiny_schema, source)
        source[0, 0] = 1
        assert dataset.records[0, 0] == 0

    def test_wrong_width_rejected(self, tiny_schema):
        with pytest.raises(DataError):
            CategoricalDataset(tiny_schema, [[0, 0, 0]])

    def test_out_of_domain_rejected(self, tiny_schema):
        with pytest.raises(DataError) as err:
            CategoricalDataset(tiny_schema, [[0, 3]])
        assert "out-of-domain" in str(err.value)

    def test_negative_rejected(self, tiny_schema):
        with pytest.raises(DataError):
            CategoricalDataset(tiny_schema, [[-1, 0]])

    def test_empty_dataset_allowed(self, tiny_schema):
        dataset = CategoricalDataset(tiny_schema, np.empty((0, 2), dtype=np.int64))
        assert dataset.n_records == 0

    def test_from_joint_indices_roundtrip(self, tiny_dataset):
        rebuilt = CategoricalDataset.from_joint_indices(
            tiny_dataset.schema, tiny_dataset.joint_indices()
        )
        assert rebuilt == tiny_dataset

    def test_from_labels(self, tiny_schema):
        dataset = CategoricalDataset.from_labels(
            tiny_schema, [["red", "m"], ["blue", "l"]]
        )
        assert dataset.records.tolist() == [[0, 1], [1, 2]]

    def test_from_labels_unknown(self, tiny_schema):
        with pytest.raises(DataError):
            CategoricalDataset.from_labels(tiny_schema, [["red", "xl"]])

    def test_from_labels_wrong_arity(self, tiny_schema):
        with pytest.raises(DataError):
            CategoricalDataset.from_labels(tiny_schema, [["red"]])

    def test_equality(self, tiny_schema):
        a = CategoricalDataset(tiny_schema, [[0, 0]])
        b = CategoricalDataset(tiny_schema, [[0, 0]])
        c = CategoricalDataset(tiny_schema, [[0, 1]])
        assert a == b and a != c

    def test_repr_contains_shape(self, tiny_dataset):
        assert "n_records=8" in repr(tiny_dataset)


class TestConstructionCopies:
    """The single-copy construction policy (and its zero-copy paths)."""

    def test_readonly_array_adopted_without_copy(self, tiny_schema):
        source = np.zeros((3, 2), dtype=np.int64)
        source.setflags(write=False)
        dataset = CategoricalDataset(tiny_schema, source)
        assert np.shares_memory(dataset.records, source)

    def test_readonly_view_of_writable_base_is_copied(self, tiny_schema):
        base = np.zeros((3, 2), dtype=np.int64)
        view = base.view()
        view.setflags(write=False)
        dataset = CategoricalDataset(tiny_schema, view)
        base[0, 0] = 1  # must not reach the dataset through the alias
        assert dataset.records[0, 0] == 0
        assert not np.shares_memory(dataset.records, base)

    def test_broadcast_view_is_copied(self, tiny_schema):
        base = np.zeros((1, 2), dtype=np.int64)
        wide = np.broadcast_to(base, (3, 2))
        dataset = CategoricalDataset(tiny_schema, wide)
        base[0, 0] = 1
        assert dataset.records[0, 0] == 0

    def test_integer_dtype_preserved(self, tiny_schema):
        source = np.zeros((3, 2), dtype=np.uint8)
        assert CategoricalDataset(tiny_schema, source).records.dtype == np.uint8
        source64 = np.zeros((3, 2), dtype=np.int64)
        assert CategoricalDataset(tiny_schema, source64).records.dtype == np.int64

    def test_iter_chunks_shares_record_memory(self, tiny_dataset):
        chunk = next(tiny_dataset.iter_chunks(4))
        assert np.shares_memory(chunk.records, tiny_dataset.records)

    def test_from_joint_indices_is_compact(self, tiny_dataset):
        rebuilt = CategoricalDataset.from_joint_indices(
            tiny_dataset.schema, tiny_dataset.joint_indices()
        )
        assert rebuilt == tiny_dataset
        assert rebuilt.backend == "compact"


class TestBackends:
    def test_default_construction_reports_backend(self, tiny_dataset):
        assert tiny_dataset.backend == "int64"  # built from a python list

    def test_with_backend_roundtrip(self, tiny_dataset):
        compact = tiny_dataset.with_backend("compact")
        assert compact == tiny_dataset
        assert compact.backend == "compact"
        assert compact.records.dtype == np.uint8
        assert compact.nbytes * 8 == tiny_dataset.nbytes
        widened = compact.with_backend("int64")
        assert widened == tiny_dataset
        assert widened.records.dtype == np.int64

    def test_with_backend_is_idempotent(self, tiny_dataset):
        compact = tiny_dataset.with_backend("compact")
        assert compact.with_backend("compact") is compact

    def test_unknown_backend_rejected(self, tiny_dataset):
        with pytest.raises(DataError):
            tiny_dataset.with_backend("zstd")

    def test_counting_views_identical_across_backends(self, tiny_dataset):
        compact = tiny_dataset.with_backend("compact")
        assert np.array_equal(compact.joint_counts(), tiny_dataset.joint_counts())
        assert np.array_equal(
            compact.subset_counts([1]), tiny_dataset.subset_counts([1])
        )
        assert compact.labels() == tiny_dataset.labels()


class TestViews:
    def test_joint_indices(self, tiny_dataset):
        expected = tiny_dataset.schema.encode(tiny_dataset.records)
        assert np.array_equal(tiny_dataset.joint_indices(), expected)

    def test_column_by_name_and_position(self, tiny_dataset):
        by_name = tiny_dataset.column("size")
        by_pos = tiny_dataset.column(1)
        assert np.array_equal(by_name, by_pos)

    def test_labels(self, tiny_schema):
        dataset = CategoricalDataset(tiny_schema, [[1, 2]])
        assert dataset.labels() == [("blue", "l")]

    def test_to_boolean_one_hot(self, tiny_dataset):
        bits = tiny_dataset.to_boolean()
        assert bits.shape == (8, 5)
        # Exactly one bit set per attribute block.
        assert np.all(bits[:, :2].sum(axis=1) == 1)
        assert np.all(bits[:, 2:].sum(axis=1) == 1)

    def test_to_boolean_positions(self, tiny_schema):
        dataset = CategoricalDataset(tiny_schema, [[1, 2]])
        assert dataset.to_boolean()[0].tolist() == [0, 1, 0, 0, 1]


class TestCounting:
    def test_joint_counts_total(self, tiny_dataset):
        counts = tiny_dataset.joint_counts()
        assert counts.shape == (6,)
        assert counts.sum() == 8

    def test_joint_counts_values(self, tiny_schema):
        dataset = CategoricalDataset(tiny_schema, [[0, 1], [0, 1], [1, 0]])
        counts = dataset.joint_counts()
        assert counts[1] == 2  # (0,1) -> index 1
        assert counts[3] == 1  # (1,0) -> index 3

    def test_subset_counts_marginalise(self, survey_dataset):
        by_subset = survey_dataset.subset_counts([0])
        by_value = survey_dataset.value_counts("smokes")
        assert np.array_equal(by_subset, by_value)

    def test_subset_counts_consistent_with_joint(self, survey_dataset):
        """Marginalising the joint histogram equals direct subset counts."""
        joint = survey_dataset.joint_counts().reshape(
            survey_dataset.schema.cardinalities
        )
        assert np.array_equal(
            survey_dataset.subset_counts([0, 2]), joint.sum(axis=1).ravel()
        )

    def test_value_counts_by_position(self, tiny_dataset):
        counts = tiny_dataset.value_counts(0)
        assert counts.tolist() == [5, 3]

    def test_sample(self, survey_dataset, rng):
        sample = survey_dataset.sample(100, rng)
        assert sample.n_records == 100
        assert sample.schema == survey_dataset.schema

    def test_sample_size_validation(self, tiny_dataset, rng):
        with pytest.raises(DataError):
            tiny_dataset.sample(9, rng)
        with pytest.raises(DataError):
            tiny_dataset.sample(-1, rng)
