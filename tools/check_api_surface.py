#!/usr/bin/env python
"""Public-API surface gate for ``repro`` and ``repro.api``.

The facade contract (``src/repro/api.py``) is only stable if its
surface cannot drift silently.  This tool collects every public name
exported by ``repro`` (its ``__all__``) and ``repro.api``, compares
the sorted list against the committed ``api_surface.txt``, and fails
when they differ -- so adding, renaming or removing a public name
requires touching the surface file in the same commit, where reviewers
see it.

Usage::

    python tools/check_api_surface.py             # gate against api_surface.txt
    python tools/check_api_surface.py --update    # rewrite the surface file

CI runs the gate in the lint job; ``--update`` is for intentional
surface changes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SURFACE_FILE = REPO_ROOT / "api_surface.txt"

#: The modules whose exported names form the pinned surface.
SURFACE_MODULES = ("repro", "repro.api", "repro.service")


def collect_surface() -> list[str]:
    """Sorted ``module.name`` entries for every pinned public export."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        import importlib

        names = []
        for module_name in SURFACE_MODULES:
            module = importlib.import_module(module_name)
            exported = getattr(module, "__all__", None)
            if exported is None:
                raise SystemExit(
                    f"check_api_surface: {module_name} has no __all__"
                )
            names.extend(f"{module_name}.{name}" for name in exported)
        return sorted(names)
    finally:
        sys.path.pop(0)


def main(argv=None) -> int:
    """Gate (or ``--update``) the committed API surface file."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite api_surface.txt from the current exports",
    )
    args = parser.parse_args(argv)
    current = collect_surface()
    rendered = "\n".join(current) + "\n"
    if args.update:
        SURFACE_FILE.write_text(rendered)
        print(f"check_api_surface: wrote {len(current)} names to {SURFACE_FILE}")
        return 0
    try:
        committed = SURFACE_FILE.read_text().split()
    except FileNotFoundError:
        print(
            f"check_api_surface: {SURFACE_FILE} is missing; run with --update",
            file=sys.stderr,
        )
        return 1
    added = sorted(set(current) - set(committed))
    removed = sorted(set(committed) - set(current))
    if not added and not removed:
        print(f"check_api_surface: OK ({len(current)} public names)")
        return 0
    for name in added:
        print(f"check_api_surface: NEW public name not in surface file: {name}")
    for name in removed:
        print(f"check_api_surface: public name disappeared: {name}")
    print(
        "check_api_surface: the public surface changed; if intentional, run "
        "`python tools/check_api_surface.py --update` and commit "
        "api_surface.txt",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
