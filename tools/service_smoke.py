#!/usr/bin/env python
"""End-to-end smoke check for ``frapp serve`` (used by CI).

Starts the daemon as a real subprocess on a random port, drives 1000
CENSUS submissions through the :func:`repro.api.connect` client in
odd-sized requests, and asserts that:

* the spooled perturbed database is **bit-identical** to the offline
  ``engine.perturb(dataset, seed)`` using the mechanism spec and seed
  recorded in the tenant's ledger;
* service-side reconstructed supports equal the offline estimator's
  to the last bit (same counts, same inversion);
* a tenant whose cumulative budget cannot absorb another collection
  receives a structured HTTP 403 refusal;
* the ledger survives the daemon's restart with the same cumulative
  state.

Usage::

    python tools/service_smoke.py [--records 1000]
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.api import connect  # noqa: E402
from repro.data import census_schema, generate_census  # noqa: E402
from repro.data.io import FrdSpool  # noqa: E402
from repro.exceptions import BudgetExceededError  # noqa: E402
from repro.mechanisms import MechanismSpec, from_spec  # noqa: E402
from repro.mechanisms.base import MarginalInversionEstimator  # noqa: E402
from repro.mining.itemsets import Itemset  # noqa: E402
from repro.service import LedgerStore  # noqa: E402


def start_daemon(data_dir: str, seed: int) -> tuple[subprocess.Popen, int]:
    """Launch ``frapp serve --port 0`` and parse the announced port."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve",
            "--port",
            "0",
            "--data-dir",
            data_dir,
            "--seed",
            str(seed),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    line = proc.stdout.readline()
    match = re.search(r"http://[\w.\-]+:(\d+)", line)
    if not match:
        proc.terminate()
        raise SystemExit(f"service_smoke: no port announcement, got {line!r}")
    return proc, int(match.group(1))


def main(argv=None) -> int:
    """Run the smoke scenario; 0 iff every assertion holds."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=424242)
    args = parser.parse_args(argv)

    schema = census_schema()
    data = generate_census(args.records, seed=11)
    data_dir = tempfile.mkdtemp(prefix="frapp-smoke-")
    itemsets = [Itemset([(0, 1)]), Itemset([(1, 2), (2, 0)])]
    wire_itemsets = [
        {"attributes": list(its.attributes), "values": list(its.values)}
        for its in itemsets
    ]

    proc, port = start_daemon(data_dir, args.seed)
    try:
        client = connect(f"http://127.0.0.1:{port}")
        assert client.health()["status"] == "ok"
        # Odd-sized submissions: flush boundaries must not matter.
        edges = [0, 17, 301, 302, 650, args.records]
        for lo, hi in zip(edges, edges[1:]):
            response = client.submit("smoke", data.records[lo:hi])
        assert response["spooled"] == args.records, response
        service_supports = client.reconstruct("smoke", wire_itemsets)["supports"]
        ledger_body = client.ledger("smoke")["ledger"]
        # Exhaust the budget: the default det-gd charge uses the whole
        # gamma budget, so any further collection must be refused with
        # a structured 403.
        try:
            client.open_collection("smoke", "second")
        except BudgetExceededError as refusal:
            assert refusal.status == 403, refusal.status
            assert refusal.details["tenant"] == "smoke", refusal.details
        else:
            raise SystemExit("service_smoke: budget refusal did not happen")
    finally:
        proc.terminate()
        proc.wait(timeout=30)

    # Offline reproduction from the ledger alone.
    record = LedgerStore(data_dir).load("smoke").collections["default"]
    mechanism = from_spec(MechanismSpec.from_dict(record.statement.spec), schema)
    offline = mechanism.perturb(data, seed=record.seed)
    with FrdSpool(schema, Path(data_dir) / "smoke" / "default.frd") as spool:
        spooled = spool.records(0, args.records)
    if not np.array_equal(spooled, offline.records):
        raise SystemExit("service_smoke: spool is not bit-identical to offline")
    estimator = MarginalInversionEstimator(
        mechanism, offline.subset_counts, offline.n_records
    )
    offline_supports = [float(s) for s in estimator.supports(itemsets)]
    if service_supports != offline_supports:
        raise SystemExit(
            f"service_smoke: supports diverge: {service_supports} vs "
            f"{offline_supports}"
        )

    # Restart: cumulative ledger state must survive verbatim.
    proc, port = start_daemon(data_dir, args.seed)
    try:
        client = connect(port)
        restarted = client.ledger("smoke")["ledger"]
        if restarted != ledger_body:
            raise SystemExit("service_smoke: ledger changed across restart")
    finally:
        proc.terminate()
        proc.wait(timeout=30)

    print(
        f"service_smoke: OK ({args.records} records, bit-identical spool, "
        f"exact supports, 403 refusal, restart-stable ledger)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
