#!/usr/bin/env python
"""Coverage-ratchet gate: line coverage must never drop below the floor.

Usage::

    # Gate a coverage.xml produced by `pytest --cov=repro --cov-report=xml`
    python tools/check_coverage.py coverage.xml

    # Raise the committed floor to the measured value (rounded down):
    python tools/check_coverage.py coverage.xml --update

The floor lives in ``tools/coverage_floor.txt`` -- a single number, the
minimum acceptable line-coverage percentage of ``src/repro``.  The gate
is a *ratchet*: CI fails when a change drops coverage below the floor,
and ``--update`` only ever moves the floor up (floors are earned, not
negotiated down; lowering it is a deliberate, reviewed edit of the
file).  The XML parse reads only the root ``line-rate`` attribute, so
any Cobertura-style report (pytest-cov, coverage.py) works.
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ElementTree
from pathlib import Path

FLOOR_FILE = Path(__file__).parent / "coverage_floor.txt"


def measured_percent(report: Path) -> float:
    """Overall line coverage (percent) from a Cobertura XML report."""
    try:
        root = ElementTree.parse(report).getroot()
    except (OSError, ElementTree.ParseError) as error:
        raise SystemExit(f"{report}: cannot read coverage XML ({error})")
    rate = root.get("line-rate")
    if rate is None:
        raise SystemExit(f"{report}: no line-rate attribute (not Cobertura XML?)")
    return float(rate) * 100.0


def current_floor() -> float:
    """The committed minimum, or 0 when no floor file exists yet."""
    try:
        return float(FLOOR_FILE.read_text().strip())
    except FileNotFoundError:
        return 0.0
    except ValueError:
        raise SystemExit(f"{FLOOR_FILE}: not a number")


def main(argv=None) -> int:
    """Compare measured coverage against the ratchet floor."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="coverage.xml to gate")
    parser.add_argument(
        "--update",
        action="store_true",
        help="raise the floor to the measured value (never lowers it)",
    )
    args = parser.parse_args(argv)

    percent = measured_percent(args.report)
    floor = current_floor()

    if args.update:
        new_floor = max(floor, float(int(percent * 10)) / 10.0)
        FLOOR_FILE.write_text(f"{new_floor:.1f}\n")
        print(f"coverage floor: {floor:.1f}% -> {new_floor:.1f}% "
              f"(measured {percent:.2f}%)")
        return 0

    if percent < floor:
        print(
            f"coverage regression: {percent:.2f}% measured, floor is "
            f"{floor:.1f}% (tools/coverage_floor.txt)",
            file=sys.stderr,
        )
        return 1
    print(f"coverage ok: {percent:.2f}% (floor {floor:.1f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
