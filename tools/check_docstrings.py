#!/usr/bin/env python
"""Docstring-coverage gate for the public API of ``src/repro``.

Every module, public class, and public function/method (names not
starting with ``_``; dunders exempt, the class docstring covers them)
must carry a docstring.  CI runs this in the lint job; the build fails
while any public surface is undocumented.

Usage::

    python tools/check_docstrings.py            # gate src/repro
    python tools/check_docstrings.py --list     # also list covered defs
    python tools/check_docstrings.py PATH ...   # gate other trees
"""

from __future__ import annotations

import argparse
import ast
from pathlib import Path

DEFAULT_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_definitions(tree: ast.Module):
    """Yield ``(qualname, node)`` for the module's public surface."""
    yield "<module>", tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield node.name, node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_public(child.name):
                        yield f"{node.name}.{child.name}", child


def audit_file(path: Path):
    """``(covered, missing)`` qualname lists for one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    covered, missing = [], []
    for qualname, node in _walk_definitions(tree):
        (covered if ast.get_docstring(node) else missing).append(qualname)
    return covered, missing


def main(argv=None) -> int:
    """Gate the given trees (default ``src/repro``); 0 iff fully covered."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path, default=[DEFAULT_ROOT])
    parser.add_argument(
        "--list", action="store_true", help="also list covered definitions"
    )
    args = parser.parse_args(argv)

    total_covered, failures = 0, []
    for root in args.paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            covered, missing = audit_file(path)
            total_covered += len(covered)
            for qualname in missing:
                failures.append(f"{path}: {qualname}")
            if args.list:
                for qualname in covered:
                    print(f"ok: {path}: {qualname}")

    total = total_covered + len(failures)
    pct = 100.0 * total_covered / total if total else 100.0
    print(
        f"docstring coverage: {total_covered}/{total} public definitions ({pct:.1f}%)"
    )
    if failures:
        print("\nmissing docstrings:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
